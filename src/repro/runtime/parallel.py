"""Worker-pool execution for the chunked compression pipeline.

The v2/v3 container formats (:mod:`repro.tio.container`) split a trace
into independent record chunks, which exposes two kinds of parallelism:

- the **post-compression stage**: ``bz2``, ``zlib``, and ``lzma`` all
  release the GIL inside their C cores, so a plain thread pool scales the
  codec stage across cores with zero serialization cost;
- the **prediction-kernel stage**: pure Python, so threads cannot speed it
  up; an optional process pool ships whole chunks to worker interpreters
  instead (at pickling cost, worthwhile for large chunks).

Everything here is *deterministic*: results always come back in submission
order, so compressed output is byte-identical regardless of worker count.
That guarantee extends to worker failure: a process pool whose workers
crash (``BrokenProcessPool`` — OOM kill, segfaulting interpreter, killed
child) is retried with bounded backoff and finally replaced by plain
in-process execution, so ``workers=N`` can only ever change latency, never
results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
import os
import time
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import OperationCancelled

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds accepted by :func:`map_ordered`.
EXECUTOR_KINDS = ("thread", "process")

#: How many times a broken process pool is rebuilt before giving up on
#: process parallelism for the call.
PROCESS_POOL_RETRIES = 2

#: Base delay before rebuilding a broken pool; doubles per attempt.  Kept
#: short — a crashed worker is usually deterministic (bad input, OOM), so
#: the retries exist for transient causes (a killed child, fork pressure).
PROCESS_POOL_BACKOFF_SECONDS = 0.05


def available_parallelism() -> int:
    """Number of CPUs the process may use (affinity-aware, >= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count option.

    ``None`` and ``1`` mean serial execution; ``0`` means "one worker per
    available CPU"; any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if workers == 0:
        return available_parallelism()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def check_cancel(cancel: Callable[[], bool] | None) -> None:
    """Raise :class:`~repro.errors.OperationCancelled` if ``cancel`` fires.

    ``cancel`` is a cheap zero-argument predicate (typically
    ``threading.Event.is_set``) owned by whoever started the work — a
    server request whose deadline fired, a dropped connection.  ``None``
    means "never cancelled" and costs nothing.
    """
    if cancel is not None and cancel():
        raise OperationCancelled("work cancelled by caller")


def map_ordered(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers: int | None = 1,
    kind: str = "thread",
    *,
    retries: int = PROCESS_POOL_RETRIES,
    backoff: float = PROCESS_POOL_BACKOFF_SECONDS,
    cancel: Callable[[], bool] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, returning results in item order.

    With ``workers`` <= 1 (or fewer than two items) this is a plain serial
    map — no pool is spun up, so the common single-threaded path pays
    nothing.  Otherwise a thread pool (default) or process pool executes
    the calls concurrently; ``Executor.map`` guarantees result order
    matches submission order, which keeps chunk assembly deterministic.

    The process kind requires ``fn`` and the items to be picklable.  When
    worker processes die mid-flight (:class:`BrokenProcessPool`), the pool
    is rebuilt up to ``retries`` times with exponential backoff starting at
    ``backoff`` seconds, then the whole batch falls back to in-process
    serial execution — the result is identical either way because ``fn``
    is pure per item.  Exceptions *raised by* ``fn`` are not retried; they
    propagate exactly as in the serial path.

    ``cancel`` (optional) is a zero-argument predicate polled before each
    item (serial and thread paths) and before each pool attempt (process
    path — the predicate cannot cross a pickle boundary); when it returns
    true the call aborts with :class:`~repro.errors.OperationCancelled`.
    Cancellation is cooperative and chunk-granular: items already in
    flight finish, nothing is retried, and no partial result escapes.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}")
    items = list(items)
    count = resolve_workers(workers)
    check_cancel(cancel)
    if count <= 1 or len(items) <= 1:
        results = []
        for item in items:
            check_cancel(cancel)
            results.append(fn(item))
        return results
    count = min(count, len(items))
    if kind == "process":
        for attempt in range(retries + 1):
            check_cancel(cancel)
            try:
                with ProcessPoolExecutor(max_workers=count) as pool:
                    return list(pool.map(fn, items))
            except BrokenProcessPool:
                if attempt < retries:
                    time.sleep(backoff * (2**attempt))
        # Every pool attempt died: run the batch in this process instead.
        # Slower, but deterministic and always available.
        results = []
        for item in items:
            check_cancel(cancel)
            results.append(fn(item))
        return results

    def guarded(item: T) -> R:
        check_cancel(cancel)
        return fn(item)

    with ThreadPoolExecutor(max_workers=count) as pool:
        return list(pool.map(guarded, items))


def chunk_spans(record_count: int, chunk_records: int) -> list[tuple[int, int]]:
    """Split ``record_count`` records into ``(start, count)`` spans.

    Every span but the last holds exactly ``chunk_records`` records — the
    invariant the v2/v3 chunk tables encode and random access relies on.
    """
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    return [
        (start, min(chunk_records, record_count - start))
        for start in range(0, record_count, chunk_records)
    ]
