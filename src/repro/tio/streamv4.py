"""Container v4: append-only stream framing with individually-flushable chunks.

Versions 2 and 3 are metadata-first: the chunk table (and, for v3, the
CRC trailer) can only be written once every chunk is known, so a writer
killed mid-capture leaves a blob whose framing never materialized and
nothing is recoverable.  Version 4 inverts the layout for streaming
ingestion — every chunk is a *self-framed* unit that is appended and
flushed independently, and the file is decodable after truncation at an
arbitrary byte:

```
prologue:
  magic "TCGN" | format version (u8 = 4) | spec fingerprint (u64)
  chunk records (varint, the per-chunk record cap)
  global stream count (varint)
  per global stream: codec id (u8) | raw length (varint) | stored length (varint)
  prologue CRC32C (u32, over everything above)
  global stream payloads, concatenated        -- only if global streams
  global CRC32C (u32, over the global payloads)

chunk frame (the append/flush unit), repeated:
  chunk magic "TCCK"
  frame length (varint: bytes that follow this varint, CRC included)
  chunk index (varint, 0-based, strictly sequential)
  record count (varint, 1 .. chunk records)
  stream count (varint)
  per stream: codec id (u8) | raw length (varint) | stored length (varint)
  stream payloads, concatenated
  frame CRC32C (u32, over the frame from its magic through its payloads)

trailer (optional, written only on clean close):
  trailer magic "TCST"
  total record count (varint)
  chunk count (varint)
  per chunk: record count (varint) | frame length in bytes (varint)
  trailer CRC32C (u32, over the trailer from its magic through the table)
```

Unlike v2/v3, chunks may hold *fewer* than ``chunk records`` records at
any position (a latency- or byte-triggered flush closes a chunk early);
``chunk records`` is the cap, not the uniform size.  Predictor state
resets at every chunk boundary exactly as in v2/v3, which is what makes
a chunk decodable the moment its frame is durable.

Recovery semantics:

- A file ending exactly at a frame boundary with no trailer is an **open
  stream** — a live capture, or one whose writer died between flushes.
  Both decode modes accept it and note the open state in the report
  (``report.truncated`` without any lost chunk: ``clean_truncation``).
- A file ending inside a frame has a **torn tail**: the final partial
  frame was never fully flushed, so its records were never acked.
  Strict mode raises; salvage drops the torn bytes, recovers everything
  before them, and sets ``report.torn_tail``.
- Salvage resynchronizes past a corrupt frame by scanning for the next
  chunk magic and validating the candidate's CRC and sequential index,
  so one damaged flush loses one chunk, not the rest of the stream.
- The trailer is purely an accelerator (seek table + record total) and
  a clean-close marker; it is verified when present and never required.

:func:`scan_stream` is the writer-side recovery primitive: it walks an
existing file, returns the byte offset of the last durable frame (the
resume watermark) and whether the stream was closed, so a
:class:`~repro.streaming.StreamingCompressor` can truncate a torn tail
and append after a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ChecksumError,
    CompressedFormatError,
    TruncatedContainerError,
)
from repro.tio.blockio import ByteReader, ByteWriter
from repro.tio.checksum import crc32c
from repro.tio.container import (
    DEFAULT_MAX_CHUNK_BYTES,
    FORMAT_VERSION_4,
    MAGIC,
    ChunkedContainer,
    ContainerChunk,
    DecodeReport,
    StreamPayload,
    _read_stream_meta,
    _write_stream_meta,
)
from repro.tio.skipindex import (
    INDEX_MAGIC,
    SkipIndex,
    encode_index_frame,
    parse_index_frame,
)

#: Magic opening every self-framed chunk (the append unit).
CHUNK_MAGIC = b"TCCK"

#: Magic opening the optional clean-close trailer.
STREAM_TRAILER_MAGIC = b"TCST"

#: Open-stream note attached to reports for trailer-less frame-boundary ends.
OPEN_STREAM_NOTE = (
    "stream is open: ends at a chunk boundary without a close trailer"
)


class _TornFrame(Exception):
    """A chunk frame extends past the end of the blob (partial flush)."""


# -- encoding ---------------------------------------------------------------


def encode_prologue(
    fingerprint: int,
    chunk_records: int,
    global_streams: list[StreamPayload],
) -> bytes:
    """The stream prologue: everything a reader needs before any chunk."""
    writer = ByteWriter()
    writer.write_bytes(MAGIC)
    writer.write_u8(FORMAT_VERSION_4)
    writer.write_u64(fingerprint)
    writer.write_varint(chunk_records)
    writer.write_varint(len(global_streams))
    for stream in global_streams:
        _write_stream_meta(writer, stream)
    head = writer.getvalue()
    out = bytearray(head)
    out += crc32c(head).to_bytes(4, "little")
    if global_streams:
        payload = b"".join(stream.data for stream in global_streams)
        out += payload
        out += crc32c(payload).to_bytes(4, "little")
    return bytes(out)


def encode_chunk_frame(index: int, chunk: ContainerChunk) -> bytes:
    """One self-framed chunk: magic, length, body, CRC — the flush unit."""
    if chunk.record_count < 1:
        raise CompressedFormatError(
            f"chunk frame {index} holds no records; empty flushes are not framed"
        )
    body = ByteWriter()
    body.write_varint(index)
    body.write_varint(chunk.record_count)
    body.write_varint(len(chunk.streams))
    for stream in chunk.streams:
        _write_stream_meta(body, stream)
    for stream in chunk.streams:
        body.write_bytes(stream.data)
    body_bytes = body.getvalue()
    head = ByteWriter()
    head.write_bytes(CHUNK_MAGIC)
    head.write_varint(len(body_bytes) + 4)  # body plus the trailing CRC
    prefix = head.getvalue() + body_bytes
    return prefix + crc32c(prefix).to_bytes(4, "little")


def encode_trailer(record_count: int, table: list[tuple[int, int]]) -> bytes:
    """The clean-close trailer: record total plus a per-chunk seek table."""
    writer = ByteWriter()
    writer.write_bytes(STREAM_TRAILER_MAGIC)
    writer.write_varint(record_count)
    writer.write_varint(len(table))
    for count, frame_bytes in table:
        writer.write_varint(count)
        writer.write_varint(frame_bytes)
    body = writer.getvalue()
    return body + crc32c(body).to_bytes(4, "little")


def encode_v4(container: ChunkedContainer) -> bytes:
    """Serialize a whole container in v4 framing (prologue, frames, trailer).

    This is the batch path (``TraceEngine.compress(container_version=4)``);
    the streaming writer emits the same three pieces incrementally.
    """
    out = bytearray(
        encode_prologue(
            container.fingerprint, container.chunk_records, container.global_streams
        )
    )
    table: list[tuple[int, int]] = []
    for index, chunk in enumerate(container.chunks):
        if chunk.record_count > container.chunk_records:
            raise CompressedFormatError(
                f"chunk {index} holds {chunk.record_count} records, "
                f"more than the declared chunk cap {container.chunk_records}"
            )
        frame = encode_chunk_frame(index, chunk)
        out += frame
        table.append((chunk.record_count, len(frame)))
    if container.skip_index is not None:
        out += encode_index_frame(container.skip_index)
    out += encode_trailer(container.record_count, table)
    return bytes(out)


# -- decoding ---------------------------------------------------------------


@dataclass
class _Prologue:
    fingerprint: int
    chunk_records: int
    global_streams: list[StreamPayload]
    global_damaged: bool
    #: Offset of the first byte after the prologue (frames start here).
    end: int


def _read_prologue(
    reader: ByteReader,
    blob: bytes,
    max_chunk_bytes: int,
) -> _Prologue:
    """Parse and CRC-verify the prologue; raises typed errors on damage."""
    magic = reader.read_bytes(4)
    if magic != MAGIC:
        raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
    version = reader.read_u8()
    if version != FORMAT_VERSION_4:
        raise CompressedFormatError(
            f"unsupported container version {version}, expected {FORMAT_VERSION_4}"
        )
    fingerprint = reader.read_u64()
    chunk_records = reader.read_varint()
    if chunk_records < 1:
        raise CompressedFormatError("declared chunk record cap is zero")
    global_count = reader.read_count("global stream count", 3)
    global_metas = [
        _read_stream_meta(reader, max_chunk_bytes, len(blob))
        for _ in range(global_count)
    ]
    meta_end = reader.position
    stored_crc = reader.read_u32()
    if crc32c(blob[:meta_end]) != stored_crc:
        raise ChecksumError("stream prologue checksum mismatch", offset=meta_end)
    global_streams: list[StreamPayload] = []
    global_damaged = False
    if global_metas:
        start = reader.position
        size = sum(stored for _c, _r, stored in global_metas)
        payload = reader.read_bytes(size)
        stored_crc = reader.read_u32()
        if crc32c(payload) != stored_crc:
            global_damaged = True
        else:
            pos = 0
            for codec_id, raw_length, stored in global_metas:
                global_streams.append(
                    StreamPayload(codec_id, raw_length, payload[pos : pos + stored])
                )
                pos += stored
        del start
    return _Prologue(
        fingerprint=fingerprint,
        chunk_records=chunk_records,
        global_streams=global_streams,
        global_damaged=global_damaged,
        end=reader.position,
    )


def _parse_frame(
    blob: bytes,
    start: int,
    chunk_records: int,
    max_chunk_bytes: int,
) -> tuple[int, ContainerChunk, int]:
    """Parse the chunk frame at ``start``; returns (index, chunk, end).

    Raises :class:`_TornFrame` when the frame runs past the end of the
    blob (a partial flush), :class:`ChecksumError` on a CRC mismatch, and
    :class:`CompressedFormatError` for structural damage.
    """
    reader = ByteReader(blob)
    reader.seek(start)
    magic = reader.read_bytes(4)
    if magic != CHUNK_MAGIC:
        raise CompressedFormatError(
            f"bad chunk magic {magic!r} at byte offset {start}"
        )
    try:
        frame_length = reader.read_varint()
    except TruncatedContainerError:
        raise _TornFrame from None
    body_start = reader.position
    end = body_start + frame_length
    if frame_length < 4 + 3:  # CRC plus at least three varint bytes
        raise CompressedFormatError(
            f"chunk frame at byte offset {start} declares an impossible "
            f"length {frame_length}"
        )
    if end > len(blob):
        raise _TornFrame
    stored_crc = int.from_bytes(blob[end - 4 : end], "little")
    if crc32c(blob[start : end - 4]) != stored_crc:
        raise ChecksumError(
            f"chunk frame checksum mismatch at byte offset {start}", offset=start
        )
    index = reader.read_varint()
    count = reader.read_varint()
    if count < 1 or count > chunk_records:
        raise CompressedFormatError(
            f"chunk frame at byte offset {start} holds {count} records, "
            f"outside 1..{chunk_records}"
        )
    stream_count = reader.read_count("chunk stream count", 3)
    metas = [
        _read_stream_meta(reader, max_chunk_bytes, len(blob))
        for _ in range(stream_count)
    ]
    streams = []
    for codec_id, raw_length, stored in metas:
        streams.append(StreamPayload(codec_id, raw_length, reader.read_bytes(stored)))
    if reader.position != end - 4:
        raise CompressedFormatError(
            f"chunk frame at byte offset {start} declares {frame_length} bytes "
            f"but its streams cover {reader.position - body_start + 4}"
        )
    return index, ContainerChunk(record_count=count, streams=streams), end


@dataclass
class _Trailer:
    record_count: int
    table: list[tuple[int, int]]
    end: int


def _parse_trailer(blob: bytes, start: int) -> _Trailer:
    """Parse and CRC-verify the clean-close trailer at ``start``."""
    reader = ByteReader(blob)
    reader.seek(start)
    magic = reader.read_bytes(4)
    if magic != STREAM_TRAILER_MAGIC:
        raise CompressedFormatError(
            f"bad trailer magic {magic!r} at byte offset {start}"
        )
    record_count = reader.read_varint()
    chunk_count = reader.read_count("trailer chunk count", 2)
    table = []
    for _ in range(chunk_count):
        count = reader.read_varint()
        frame_bytes = reader.read_varint()
        table.append((count, frame_bytes))
    body_end = reader.position
    stored_crc = reader.read_u32()
    if crc32c(blob[start:body_end]) != stored_crc:
        raise ChecksumError(
            "stream trailer checksum mismatch", offset=body_end
        )
    return _Trailer(record_count=record_count, table=table, end=reader.position)


def decode_v4(
    blob: bytes,
    expected_fingerprint: int | None = None,
    *,
    mode: str = "strict",
    max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
    report: DecodeReport | None = None,
) -> ChunkedContainer:
    """Parse a v4 stream into a :class:`ChunkedContainer`.

    Strict mode raises on any damage *except* the open-stream state (a
    trailer-less blob ending exactly at a frame boundary), which is a
    legal live capture.  Salvage mode recovers every intact frame,
    resynchronizing on the chunk magic past damage, and reports torn
    tails distinctly from corruption (``report.torn_tail``).
    """
    strict = mode == "strict"
    report = report if report is not None else DecodeReport()
    report.mode = mode
    report.version = FORMAT_VERSION_4
    reader = ByteReader(blob)
    prologue = _read_prologue(reader, blob, max_chunk_bytes)
    # The fingerprint check runs after the prologue CRC held: a mismatch on
    # checksum-valid metadata is a wrong decompressor, not corruption.
    if (
        expected_fingerprint is not None
        and prologue.fingerprint != expected_fingerprint
    ):
        raise CompressedFormatError(
            f"spec fingerprint mismatch: blob has {prologue.fingerprint:#018x}, "
            f"decompressor expects {expected_fingerprint:#018x}"
        )
    if prologue.global_damaged:
        if strict:
            raise ChecksumError(
                "global stream payload checksum mismatch", offset=prologue.end
            )
        report.header_stream_lost = True
        report.notes.append("global stream payload checksum mismatch")

    container = ChunkedContainer(
        fingerprint=prologue.fingerprint,
        record_count=0,
        chunk_records=prologue.chunk_records,
        global_streams=prologue.global_streams,
        version=FORMAT_VERSION_4,
    )
    expected_index = 0
    trailer: _Trailer | None = None
    table: list[tuple[int, int]] = []
    position = prologue.end
    while position < len(blob):
        window = blob[position : position + 4]
        if window == STREAM_TRAILER_MAGIC:
            try:
                trailer = _parse_trailer(blob, position)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError) as exc:
                if strict:
                    raise
                report.trailer_damaged = True
                report.notes.append(f"trailer: {exc}")
                position = len(blob)
                break
            position = trailer.end
            break
        if window == INDEX_MAGIC:
            try:
                skip, frame_end = parse_index_frame(blob, position)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError) as exc:
                if strict:
                    raise
                report.notes.append(f"skip index unreadable, ignored: {exc}")
                position = _resync(blob, position, report, expected_index)
                continue
            container.skip_index = skip
            position = frame_end
            continue
        if window != CHUNK_MAGIC or len(window) < 4:
            if strict:
                if len(window) < 4:
                    raise TruncatedContainerError(
                        f"torn bytes after the last complete chunk frame "
                        f"at byte offset {position}",
                        offset=position,
                    )
                raise CompressedFormatError(
                    f"expected a chunk frame or trailer at byte offset "
                    f"{position}, found {window!r}"
                )
            if len(window) < 4:
                # Fewer bytes than a frame magic can only be the start of
                # a partial flush — a torn tail, same as strict mode says.
                report.torn_tail = True
                report.notes.append(
                    f"torn tail: {len(window)} stray bytes after the last "
                    f"complete chunk frame at byte offset {position} dropped"
                )
                position = len(blob)
                break
            position = _resync(blob, position, report, expected_index)
            continue
        try:
            index, chunk, end = _parse_frame(
                blob, position, prologue.chunk_records, max_chunk_bytes
            )
        except _TornFrame:
            if strict:
                raise TruncatedContainerError(
                    f"torn chunk frame at byte offset {position}: the stream "
                    f"ends mid-flush",
                    offset=position,
                ) from None
            # Could be a truncated file (torn tail) or a corrupt length
            # with valid frames beyond — resync decides which.
            resumed = _resync(blob, position, report, expected_index, torn_ok=True)
            if resumed >= len(blob):
                report.torn_tail = True
                report.notes.append(
                    f"torn tail: partial chunk frame at byte offset {position} "
                    f"dropped (records below the last flush watermark are intact)"
                )
                position = len(blob)
                break
            position = resumed
            continue
        except (ChecksumError, CompressedFormatError, TruncatedContainerError) as exc:
            if strict:
                raise
            report.mark_lost(
                expected_index, 0, f"{exc}"
            )
            position = _resync(blob, position, report, expected_index + 1)
            continue
        if index != expected_index:
            if strict:
                raise CompressedFormatError(
                    f"chunk frame at byte offset {position} carries index "
                    f"{index}, expected {expected_index} (phantom or spliced "
                    f"chunk)"
                )
            if index < expected_index:
                report.notes.append(
                    f"duplicate or out-of-order chunk frame {index} at byte "
                    f"offset {position} ignored"
                )
                position = end
                continue
            for missing in range(expected_index, index):
                if missing not in report.reasons:
                    report.mark_lost(missing, 0, "chunk frame missing from stream")
            expected_index = index
        container.chunks.append(chunk)
        container.record_count += chunk.record_count
        report.mark_recovered(expected_index, chunk.record_count)
        table.append((chunk.record_count, end - position))
        expected_index += 1
        position = end

    report.total_chunks = expected_index
    report.total_records = container.record_count + report.lost_records
    if position < len(blob):
        leftover = len(blob) - position
        if strict:
            raise CompressedFormatError(
                f"{leftover} trailing bytes after the stream trailer"
            )
        report.notes.append(
            f"{leftover} trailing bytes after the stream trailer (ignored)"
        )
    if trailer is None:
        # Open stream (or clean truncation at a frame boundary): legal,
        # but flagged so callers can tell an archive from a live capture.
        if not report.torn_tail:
            report.truncated = True
            report.notes.append(OPEN_STREAM_NOTE)
    else:
        problems = []
        if trailer.record_count != container.record_count and not report.lost_chunks:
            problems.append(
                f"trailer declares {trailer.record_count} records, frames "
                f"carry {container.record_count}"
            )
        if len(trailer.table) != expected_index and not report.lost_chunks:
            problems.append(
                f"trailer declares {len(trailer.table)} chunks, stream "
                f"carries {expected_index}"
            )
        elif not report.lost_chunks and trailer.table != table:
            problems.append("trailer seek table disagrees with the chunk frames")
        for problem in problems:
            if strict:
                raise CompressedFormatError(problem)
            report.trailer_damaged = True
            report.notes.append(f"trailer: {problem}")
    return container


def _resync(
    blob: bytes,
    position: int,
    report: DecodeReport,
    next_index: int,
    *,
    torn_ok: bool = False,
) -> int:
    """Scan forward for the next plausible frame or trailer boundary.

    Returns the offset of the next candidate chunk magic or trailer magic
    after ``position`` (``len(blob)`` when none survives).  Candidates are
    only boundaries — the caller re-parses and re-validates them, so a
    payload byte-pattern that happens to spell the magic is rejected by
    its CRC and the scan continues from the next occurrence.
    """
    search_from = position + 1
    while True:
        chunk_at = blob.find(CHUNK_MAGIC, search_from)
        trailer_at = blob.find(STREAM_TRAILER_MAGIC, search_from)
        index_at = blob.find(INDEX_MAGIC, search_from)
        candidates = [at for at in (chunk_at, trailer_at, index_at) if at != -1]
        if not candidates:
            return len(blob)
        candidate = min(candidates)
        if candidate == trailer_at:
            try:
                _parse_trailer(blob, candidate)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError):
                search_from = candidate + 1
                continue
            return candidate
        if candidate == index_at:
            try:
                parse_index_frame(blob, candidate)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError):
                search_from = candidate + 1
                continue
            return candidate
        try:
            _parse_frame(blob, candidate, 1 << 62, DEFAULT_MAX_CHUNK_BYTES)
        except _TornFrame:
            if torn_ok:
                search_from = candidate + 1
                continue
            return candidate
        except (ChecksumError, CompressedFormatError, TruncatedContainerError):
            search_from = candidate + 1
            continue
        return candidate


# -- writer-side recovery ---------------------------------------------------


@dataclass
class StreamScan:
    """What :func:`scan_stream` found in an existing v4 file.

    ``data_end`` is the resume watermark in bytes: every frame before it
    is durable and CRC-valid; everything at or after it (torn partial
    frame, damaged trailer) is safe to truncate before appending.
    """

    fingerprint: int
    chunk_records: int
    global_streams: list[StreamPayload] = field(default_factory=list)
    #: Offset of the first byte after the prologue.
    prologue_end: int = 0
    #: (index, record_count, frame start, frame end) per durable frame.
    frames: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: First byte after the last durable frame (the truncate-to offset).
    data_end: int = 0
    records: int = 0
    closed: bool = False
    torn: bool = False
    #: Skip index frame, when the stream carries one (closed streams only).
    index: "SkipIndex | None" = None

    @property
    def chunk_count(self) -> int:
        return len(self.frames)


def scan_stream(
    blob: bytes,
    expected_fingerprint: int | None = None,
    *,
    max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
) -> StreamScan:
    """Walk an existing v4 file and locate its durable frame prefix.

    Unlike :func:`decode_v4` this never resynchronizes past damage: a
    writer resuming after a crash must append strictly after the last
    *contiguous* run of valid frames, because that is exactly what every
    acked watermark covered.  Raises typed errors when the prologue is
    unreadable or the fingerprint does not match.
    """
    reader = ByteReader(blob)
    prologue = _read_prologue(reader, blob, max_chunk_bytes)
    if (
        expected_fingerprint is not None
        and prologue.fingerprint != expected_fingerprint
    ):
        raise CompressedFormatError(
            f"spec fingerprint mismatch: existing stream has "
            f"{prologue.fingerprint:#018x}, writer expects "
            f"{expected_fingerprint:#018x}"
        )
    if prologue.global_damaged:
        raise ChecksumError(
            "global stream payload checksum mismatch", offset=prologue.end
        )
    scan = StreamScan(
        fingerprint=prologue.fingerprint,
        chunk_records=prologue.chunk_records,
        global_streams=prologue.global_streams,
        prologue_end=prologue.end,
        data_end=prologue.end,
    )
    position = prologue.end
    while position < len(blob):
        window = blob[position : position + 4]
        if window == STREAM_TRAILER_MAGIC:
            try:
                trailer = _parse_trailer(blob, position)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError):
                scan.torn = True
                return scan
            if trailer.end == len(blob):
                scan.closed = True
                scan.data_end = trailer.end
            else:
                scan.torn = True
            return scan
        if window == INDEX_MAGIC:
            try:
                skip, frame_end = parse_index_frame(blob, position)
            except (ChecksumError, CompressedFormatError, TruncatedContainerError):
                scan.torn = True
                return scan
            scan.index = skip
            # data_end deliberately stays put: a resumed writer truncates
            # the index away and writes a fresh one at its next close.
            position = frame_end
            continue
        if window != CHUNK_MAGIC:
            scan.torn = True
            return scan
        try:
            index, chunk, end = _parse_frame(
                blob, position, prologue.chunk_records, max_chunk_bytes
            )
        except (_TornFrame, ChecksumError, CompressedFormatError, TruncatedContainerError):
            scan.torn = True
            return scan
        if index != len(scan.frames):
            scan.torn = True
            return scan
        scan.frames.append((index, chunk.record_count, position, end))
        scan.records += chunk.record_count
        scan.data_end = end
        position = end
    return scan
