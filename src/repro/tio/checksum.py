"""CRC32C (Castagnoli) checksums for container integrity framing.

The v3 container format frames its metadata and every chunk payload with a
CRC32C checksum so that storage or transport corruption is *detected*
instead of silently mis-decoding — the property DPTC-style per-block
framing relies on to keep damaged trace archives partially recoverable.

CRC32C uses the Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78),
the same checksum used by iSCSI, ext4, and most storage formats; unlike
``zlib.crc32`` it has hardware support on modern CPUs, so a native
implementation can later be swapped in without a wire-format change.

This implementation is pure Python (the container only checksums the
*post-compressed* payloads plus a few hundred metadata bytes, so the cost
stays a small fraction of the codec stage — measured in
``benchmarks/results/crc_overhead.txt``).  It processes eight bytes per
loop iteration with a slicing-by-8 table to keep the interpreter overhead
down.
"""

from __future__ import annotations

_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _build_tables() -> list[list[int]]:
    base = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        base.append(c)
    tables = [base]
    for _ in range(7):
        prev = tables[-1]
        tables.append([(prev[n] >> 8) ^ base[prev[n] & 0xFF] for n in range(256)])
    return tables


_T = _build_tables()
_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _T


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a previous ``crc``.

    The running value can be chained: ``crc32c(b, crc32c(a)) ==
    crc32c(a + b)``.
    """
    crc = ~crc & 0xFFFFFFFF
    view = memoryview(data)
    length = len(view)
    pos = 0
    # Slicing-by-8 main loop: one table lookup per input byte, but only
    # one Python iteration per eight bytes.
    end8 = length - (length % 8)
    while pos < end8:
        b0, b1, b2, b3, b4, b5, b6, b7 = view[pos : pos + 8]
        crc ^= b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
        crc = (
            _T7[crc & 0xFF]
            ^ _T6[(crc >> 8) & 0xFF]
            ^ _T5[(crc >> 16) & 0xFF]
            ^ _T4[(crc >> 24) & 0xFF]
            ^ _T3[b4]
            ^ _T2[b5]
            ^ _T1[b6]
            ^ _T0[b7]
        )
        pos += 8
    while pos < length:
        crc = (crc >> 8) ^ _T0[(crc ^ view[pos]) & 0xFF]
        pos += 1
    return ~crc & 0xFFFFFFFF
