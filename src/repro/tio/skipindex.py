"""Chunk skip index: per-chunk, per-field summaries for predicate pushdown.

A skip index lets :mod:`repro.query` answer selective queries without
decompressing every chunk.  For each chunk it records, per field, the
minimum and maximum value plus an optional coarse bloom filter over the
chunk's values.  A query planner can then prove "no record in this chunk
can match ``f1 == 0x4800``" from the summary alone and skip the chunk's
bzip2 + predictor decode entirely.

The index is an *accelerator*, never a source of truth: a chunk whose
summary is absent, stale, or damaged is simply decoded and filtered the
slow way, so query results are identical with or without it.

Wire format
-----------

The index travels in a single self-checking frame reused by both
container generations (the same magic/length/CRC scheme as v4 ``TCCK``
chunk frames)::

    "TCIX" | varint length | body | crc32c u32 LE

``length`` counts ``body`` plus the 4 CRC bytes; the CRC covers magic,
length varint, and body.  The body is::

    u8      index format version (1)
    varint  field count
    varint  bloom bits per field (0 = no bloom filters)
    varint  chunk count
    then per chunk:
        u8  flags (bit 0: summarized)
        if summarized:
            varint record count
            per field: varint min | varint (max - min) | bloom bytes

In a v3 container the frame is appended *after* the ``TCEN`` trailer and
its CRC — old readers that stop at the trailer never see it, and readers
that notice trailing bytes can verify the frame's own CRC.  In a v4
stream it is an ordinary frame written immediately before the ``TCST``
trailer at close time; ``scan_stream`` deliberately excludes it from the
durable data prefix so a crashed-then-resumed stream drops the index and
writes a fresh one at the next close.

Unsummarized chunks (flag byte 0) keep the index aligned with the chunk
table when only a suffix of a resumed stream was observed by the writer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ChecksumError, CompressedFormatError, TruncatedContainerError
from repro.tio.blockio import ByteReader, ByteWriter
from repro.tio.checksum import crc32c
from repro.tio.traceformat import TraceFormat, unpack_records

INDEX_MAGIC = b"TCIX"
INDEX_FORMAT_VERSION = 1

# 4096 bits = 512 bytes per field per chunk: ~0.05% overhead on the
# default 1 MiB chunks.  Real traces reuse values heavily (the paper's
# whole premise), so the distinct count per chunk is usually far below
# the record count and a two-hash bloom at this size prunes most point
# lookups; min/max pruning carries range predicates regardless.
DEFAULT_BLOOM_BITS = 4096

# Knuth/Fibonacci multiplicative hash constants (same ones xxHash and
# splitmix64 use); values are mixed mod 2**64 and the top log2(m) bits
# select the bloom bit, which numpy's uint64 arithmetic mirrors exactly.
_HASH1 = 0x9E3779B97F4A7C15
_HASH2 = 0xC2B2AE3D27D4EB4F
_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class FieldSummary:
    """Min/max plus optional bloom filter for one field of one chunk."""

    lo: int
    hi: int
    bloom: bytes | None = None


@dataclass(frozen=True)
class ChunkSummary:
    """Summary of one chunk; ``fields is None`` marks an unsummarized chunk."""

    record_count: int
    fields: tuple[FieldSummary, ...] | None = None

    @property
    def summarized(self) -> bool:
        return self.fields is not None


@dataclass
class SkipIndex:
    """The full per-archive index: one :class:`ChunkSummary` per chunk."""

    field_count: int
    bloom_bits: int = DEFAULT_BLOOM_BITS
    chunks: list[ChunkSummary] = field(default_factory=list)

    @property
    def coverage(self) -> tuple[int, int]:
        """(summarized chunks, total chunks) — what ``tcgen-stream info`` prints."""
        return sum(1 for c in self.chunks if c.summarized), len(self.chunks)

    def encode(self) -> bytes:
        if self.bloom_bits and (
            self.bloom_bits < 8 or self.bloom_bits & (self.bloom_bits - 1)
        ):
            raise ValueError(f"bloom_bits must be 0 or a power of two >= 8, got {self.bloom_bits}")
        out = ByteWriter()
        out.write_u8(INDEX_FORMAT_VERSION)
        out.write_varint(self.field_count)
        out.write_varint(self.bloom_bits)
        out.write_varint(len(self.chunks))
        for chunk in self.chunks:
            if not chunk.summarized:
                out.write_u8(0)
                continue
            fields = chunk.fields or ()
            if len(fields) != self.field_count:
                raise ValueError(
                    f"chunk summary has {len(fields)} fields, index declares {self.field_count}"
                )
            out.write_u8(1)
            out.write_varint(chunk.record_count)
            for summary in fields:
                out.write_varint(summary.lo)
                out.write_varint(summary.hi - summary.lo)
                if self.bloom_bits:
                    bloom = summary.bloom
                    if bloom is None or len(bloom) != self.bloom_bits // 8:
                        raise ValueError("field summary bloom does not match bloom_bits")
                    out.write_bytes(bloom)
        return out.getvalue()

    @classmethod
    def decode(cls, body: bytes) -> "SkipIndex":
        reader = ByteReader(body)
        version = reader.read_u8()
        if version != INDEX_FORMAT_VERSION:
            raise CompressedFormatError(f"unsupported skip index version {version}")
        field_count = reader.read_varint()
        if field_count > 0xFFFF:
            raise CompressedFormatError(f"implausible skip index field count {field_count}")
        bloom_bits = reader.read_varint()
        if bloom_bits and (bloom_bits < 8 or bloom_bits & (bloom_bits - 1)):
            raise CompressedFormatError(f"invalid skip index bloom_bits {bloom_bits}")
        chunk_count = reader.read_count("index chunks")
        chunks: list[ChunkSummary] = []
        for _ in range(chunk_count):
            flags = reader.read_u8()
            if flags & 1 == 0:
                chunks.append(ChunkSummary(0, None))
                continue
            record_count = reader.read_varint()
            fields = []
            for _ in range(field_count):
                lo = reader.read_varint()
                hi = lo + reader.read_varint()
                bloom = reader.read_bytes(bloom_bits // 8) if bloom_bits else None
                fields.append(FieldSummary(lo, hi, bloom))
            chunks.append(ChunkSummary(record_count, tuple(fields)))
        if not reader.at_end():
            raise CompressedFormatError(
                f"{reader.remaining()} trailing bytes after skip index body"
            )
        return cls(field_count=field_count, bloom_bits=bloom_bits, chunks=chunks)


def encode_index_frame(index: SkipIndex) -> bytes:
    """Frame an index exactly like a v4 chunk frame (magic/len/body/CRC)."""
    body = index.encode()
    out = ByteWriter()
    out.write_bytes(INDEX_MAGIC)
    out.write_varint(len(body) + 4)
    out.write_bytes(body)
    frame = out.getvalue()
    out.write_u32(crc32c(frame))
    return out.getvalue()


def parse_index_frame(blob: bytes, start: int) -> tuple[SkipIndex, int]:
    """Parse a ``TCIX`` frame at ``start``; returns (index, end offset).

    Raises :class:`TruncatedContainerError` if the frame extends past the
    end of ``blob``, :class:`ChecksumError` if its CRC fails, and
    :class:`CompressedFormatError` for a malformed body.
    """
    if blob[start : start + 4] != INDEX_MAGIC:
        raise CompressedFormatError(f"no skip index frame at offset {start}")
    reader = ByteReader(blob)
    reader.seek(start + 4)
    length = reader.read_count("index frame", item_bytes=1)
    if length < 4:
        raise CompressedFormatError(f"skip index frame length {length} too short")
    body_start = reader.position
    end = body_start + length
    if end > len(blob):
        raise TruncatedContainerError(
            "skip index frame extends past end of data", offset=start
        )
    stored = int.from_bytes(blob[end - 4 : end], "little")
    if crc32c(blob[start : end - 4]) != stored:
        raise ChecksumError("skip index frame failed its CRC32C check", offset=start)
    index = SkipIndex.decode(blob[body_start : end - 4])
    return index, end


def _bloom_bit_positions(values: np.ndarray, bloom_bits: int) -> np.ndarray:
    shift = np.uint64(64 - (bloom_bits.bit_length() - 1))
    v = values.astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        h1 = (v * np.uint64(_HASH1)) >> shift
        h2 = ((v ^ (v >> np.uint64(29))) * np.uint64(_HASH2)) >> shift
    return np.concatenate([h1, h2]).astype(np.intp)


def bloom_maybe(bloom: bytes, bloom_bits: int, value: int) -> bool:
    """Membership test mirroring :func:`_bloom_bit_positions` bit for bit."""
    shift = 64 - (bloom_bits.bit_length() - 1)
    value &= _U64_MASK
    h1 = ((value * _HASH1) & _U64_MASK) >> shift
    h2 = ((((value ^ (value >> 29)) & _U64_MASK) * _HASH2) & _U64_MASK) >> shift
    for pos in (h1, h2):
        # np.packbits is big-endian within each byte: bit 0 is the MSB.
        if not (bloom[pos >> 3] >> (7 - (pos & 7))) & 1:
            return False
    return True


def summarize_columns(
    columns: list[np.ndarray], bloom_bits: int = DEFAULT_BLOOM_BITS
) -> ChunkSummary:
    """Summarize one chunk's per-field columns (views are fine)."""
    fields = []
    record_count = int(len(columns[0])) if columns else 0
    for column in columns:
        arr = np.asarray(column)
        lo = int(arr.min()) if arr.size else 0
        hi = int(arr.max()) if arr.size else 0
        bloom = None
        if bloom_bits:
            bits = np.zeros(bloom_bits, dtype=bool)
            if arr.size:
                bits[_bloom_bit_positions(arr, bloom_bits)] = True
            bloom = np.packbits(bits).tobytes()
        fields.append(FieldSummary(lo, hi, bloom))
    return ChunkSummary(record_count=record_count, fields=tuple(fields))


def summarize_raw(
    fmt: TraceFormat, chunk_raw: bytes, bloom_bits: int = DEFAULT_BLOOM_BITS
) -> ChunkSummary:
    """Summarize a raw chunk (``fmt`` must be the header-less chunk format)."""
    _, columns = unpack_records(fmt, chunk_raw, copy=False)
    return summarize_columns(columns, bloom_bits)


def build_index(
    fmt: TraceFormat,
    raw: bytes,
    spans: list[tuple[int, int]],
    bloom_bits: int = DEFAULT_BLOOM_BITS,
) -> SkipIndex:
    """Index a full raw trace split into ``(start, count)`` record spans."""
    _, columns = unpack_records(fmt, raw, copy=False)
    chunks = [
        summarize_columns([col[start : start + count] for col in columns], bloom_bits)
        for start, count in spans
    ]
    return SkipIndex(
        field_count=len(fmt.field_bits), bloom_bits=bloom_bits, chunks=chunks
    )
