"""Buffered little-endian byte readers and writers.

The paper's generated C code performs all I/O "with efficient block I/O
calls" and extracts values from buffers "in a manner that avoids alignment
problems".  These classes are the Python equivalent: they move whole blocks
between files and memory and read or write unaligned little-endian integers
of any byte width from an in-memory buffer.
"""

from __future__ import annotations

import os
import tempfile

from repro.errors import TruncatedContainerError

DEFAULT_BLOCK_SIZE = 1 << 16


class ByteWriter:
    """Append-only little-endian writer over a growable byte buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes."""
        self._buf += data

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-byte little-endian unsigned int."""
        self._buf += (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self.write_uint(value, 2)

    def write_u32(self, value: int) -> None:
        self.write_uint(value, 4)

    def write_u64(self, value: int) -> None:
        self.write_uint(value, 8)

    def write_varint(self, value: int) -> None:
        """Append a non-negative integer in LEB128 variable-length form."""
        if value < 0:
            raise ValueError(f"varint value must be non-negative, got {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buf.append(byte | 0x80)
            else:
                self._buf.append(byte)
                return

    def write_svarint(self, value: int) -> None:
        """Append a signed integer using zig-zag + LEB128 encoding."""
        self.write_varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)

    def getvalue(self) -> bytes:
        """Return the accumulated bytes."""
        return bytes(self._buf)


class ByteReader:
    """Sequential little-endian reader over an in-memory byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def seek(self, position: int) -> None:
        """Reposition the read cursor (bounds-checked, used for resync)."""
        if not 0 <= position <= len(self._data):
            raise ValueError(
                f"seek position {position} outside the {len(self._data)}-byte buffer"
            )
        self._pos = position

    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` bytes or raise :class:`TruncatedContainerError`."""
        if self.remaining() < count:
            raise TruncatedContainerError(
                f"truncated input: wanted {count} bytes, "
                f"only {self.remaining()} remain",
                offset=self._pos,
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_uint(self, width: int) -> int:
        """Read a ``width``-byte little-endian unsigned integer."""
        return int.from_bytes(self.read_bytes(width), "little")

    def read_u8(self) -> int:
        return self.read_uint(1)

    def read_u16(self) -> int:
        return self.read_uint(2)

    def read_u32(self) -> int:
        return self.read_uint(4)

    def read_u64(self) -> int:
        return self.read_uint(8)

    def read_varint(self) -> int:
        """Read a LEB128 variable-length unsigned integer."""
        result = 0
        shift = 0
        while True:
            byte = self.read_u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                from repro.errors import CompressedFormatError

                raise CompressedFormatError("varint longer than 10 bytes")

    def read_count(self, what: str, item_bytes: int = 1) -> int:
        """Read a varint count of items that must still fit in this buffer.

        Declared counts drive list allocations and parse loops downstream;
        validating them against the bytes that actually remain (each item
        needs at least ``item_bytes``) stops a hostile header from turning
        a 20-byte blob into a multi-gigabyte allocation or a near-endless
        parse loop.
        """
        value = self.read_varint()
        limit = self.remaining() // max(1, item_bytes)
        if value > limit:
            raise TruncatedContainerError(
                f"declared {what} {value} cannot fit in the {self.remaining()} "
                f"bytes that remain (at most {limit})",
                offset=self._pos,
            )
        return value

    def read_svarint(self) -> int:
        """Read a zig-zag encoded signed integer."""
        raw = self.read_varint()
        return (raw >> 1) ^ -(raw & 1)


def copy_blocks(src, dst, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Copy a binary file object to another in fixed-size blocks.

    Returns the number of bytes copied.  This mirrors the block I/O loop the
    generated C code uses for stdin/stdout streaming.
    """
    total = 0
    while True:
        chunk = src.read(block_size)
        if not chunk:
            return total
        dst.write(chunk)
        total += len(chunk)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The bytes land in a temporary file in the same directory and are
    renamed into place only after a successful flush+fsync, so a killed or
    crashed writer never leaves a half-written file at ``path`` — at worst
    a stale temp file that the next run ignores.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600; give the final file normal umask-based modes.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
