"""Fixed-width binary record formats for execution traces.

A :class:`TraceFormat` describes the byte layout the paper's specification
language talks about: an optional header followed by records made of
little-endian fixed-width fields.  The evaluation traces all use the *VPC
format*: a 32-bit header followed by records with a 32-bit PC field and a
64-bit data field (:data:`VPC_FORMAT`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceFormatError

# Explicitly little-endian so packed traces are portable across hosts.
_DTYPE_BY_BYTES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


@dataclass(frozen=True)
class TraceFormat:
    """Byte layout of a trace: header size plus per-field widths.

    ``header_bits`` and every entry of ``field_bits`` must be multiples of 8;
    field widths must be 8, 16, 32, or 64 bits to match the specification
    language's type-minimization rules.
    """

    header_bits: int
    field_bits: tuple[int, ...]
    pc_field: int = 1  # 1-based index of the field holding the PC

    def __post_init__(self) -> None:
        if self.header_bits % 8:
            raise TraceFormatError(f"header width {self.header_bits} not a multiple of 8")
        if not self.field_bits:
            raise TraceFormatError("a trace format needs at least one field")
        for width in self.field_bits:
            if width not in (8, 16, 32, 64):
                raise TraceFormatError(f"unsupported field width {width} bits")
        if not 1 <= self.pc_field <= len(self.field_bits):
            raise TraceFormatError(
                f"PC field {self.pc_field} out of range 1..{len(self.field_bits)}"
            )

    @property
    def header_bytes(self) -> int:
        return self.header_bits // 8

    @property
    def field_bytes(self) -> tuple[int, ...]:
        return tuple(width // 8 for width in self.field_bits)

    @property
    def record_bytes(self) -> int:
        """Size of one record in bytes."""
        return sum(self.field_bytes)

    def field_dtypes(self) -> tuple[np.dtype, ...]:
        """Numpy dtype for each field, in record order."""
        return tuple(np.dtype(_DTYPE_BY_BYTES[width // 8]) for width in self.field_bits)

    def record_count(self, raw: bytes) -> int:
        """Number of records in ``raw``, validating exact framing."""
        body = len(raw) - self.header_bytes
        if body < 0 or body % self.record_bytes:
            raise TraceFormatError(
                f"trace of {len(raw)} bytes does not frame into a {self.header_bytes}-byte "
                f"header plus {self.record_bytes}-byte records"
            )
        return body // self.record_bytes


#: The trace format used throughout the paper's evaluation (Section 6.3):
#: a 32-bit header, then alternating 32-bit PC and 64-bit data values.
VPC_FORMAT = TraceFormat(header_bits=32, field_bits=(32, 64), pc_field=1)


def pack_records(
    fmt: TraceFormat, header: bytes, columns: list[np.ndarray]
) -> bytes:
    """Serialize per-field numpy columns into raw trace bytes.

    ``columns[i]`` holds the values of field ``i+1`` for every record; all
    columns must have equal length.  Values are masked to the field width.
    """
    if len(header) != fmt.header_bytes:
        raise TraceFormatError(
            f"header is {len(header)} bytes, format wants {fmt.header_bytes}"
        )
    if len(columns) != len(fmt.field_bits):
        raise TraceFormatError(
            f"got {len(columns)} columns for {len(fmt.field_bits)} fields"
        )
    lengths = {len(col) for col in columns}
    if len(lengths) > 1:
        raise TraceFormatError(f"column lengths differ: {sorted(lengths)}")
    count = lengths.pop() if lengths else 0

    record = np.zeros(
        count,
        dtype=[(f"f{i + 1}", dt) for i, dt in enumerate(fmt.field_dtypes())],
    )
    for i, col in enumerate(columns):
        record[f"f{i + 1}"] = np.asarray(col).astype(record.dtype[i], copy=False)
    return header + record.tobytes()


def unpack_records(
    fmt: TraceFormat, raw: bytes, copy: bool = True
) -> tuple[bytes, list[np.ndarray]]:
    """Parse raw trace bytes into (header, per-field numpy columns).

    With ``copy=False`` the columns are read-only views into ``raw`` —
    no per-field allocation happens, which matters when a caller only
    iterates the columns (the compression hot path) instead of mutating
    them.
    """
    count = fmt.record_count(raw)
    header = raw[: fmt.header_bytes]
    record_dtype = np.dtype(
        [(f"f{i + 1}", dt) for i, dt in enumerate(fmt.field_dtypes())]
    )
    body = np.frombuffer(raw, dtype=record_dtype, count=count, offset=fmt.header_bytes)
    columns = [body[f"f{i + 1}"] for i in range(len(fmt.field_bits))]
    if copy:
        columns = [column.copy() for column in columns]
    return header, columns
