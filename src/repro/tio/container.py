"""Compressed-stream container formats.

A TCgen-style compressor converts a trace into several streams (one
predictor-code stream and one unpredictable-value stream per field, plus a
header stream) and post-compresses each stream individually.  This module
defines the framing that holds those post-compressed streams together in a
single blob.

**Version 1** (:class:`StreamContainer`) is a flat list of streams:

```
magic "TCGN" | format version (u8 = 1) | spec fingerprint (u64)
record count (varint) | stream count (varint)
per stream: codec id (u8) | raw length (varint) | stored length (varint)
stream payloads, concatenated
```

**Version 2** (:class:`ChunkedContainer`) splits the trace into fixed-size
record chunks so chunks can be compressed, decompressed, and seeked
independently (predictor state resets at every chunk boundary):

```
magic "TCGN" | format version (u8 = 2) | spec fingerprint (u64)
record count (varint) | chunk records (varint)
global stream count (varint)
per global stream: codec id (u8) | raw length (varint) | stored length (varint)
chunk stream count (varint) | chunk count (varint)
per chunk: record count (varint)
           per stream: codec id (u8) | raw length (varint) | stored length (varint)
global stream payloads, then per-chunk stream payloads, concatenated
```

**Version 3** is the v2 layout plus integrity framing, so corruption is
*detected* (strict mode) or *contained to the damaged chunks* (salvage
mode) instead of silently mis-decoding:

```
magic "TCGN" | format version (u8 = 3) | spec fingerprint (u64)
<metadata exactly as v2, from record count through the chunk table>
header CRC32C (u32, over everything above)
global stream payloads | global CRC32C (u32)     -- only if global streams
per chunk: stream payloads | chunk CRC32C (u32)
trailer magic "TCEN" | trailer CRC32C (u32, over all section CRCs above)
optional skip index frame "TCIX" ... (repro.tio.skipindex; self-checking)
```

Every CRC is little-endian CRC32C (:mod:`repro.tio.checksum`) over the
*stored* (post-compressed) bytes, so verification costs a small fraction
of the codec stage.  The trailer makes truncation detectable even when it
removes whole trailing chunks.  See ``docs/FORMAT.md`` for the normative
byte-level specification.

**Version 4** (:mod:`repro.tio.streamv4`) inverts the metadata-first
layout for streaming ingestion: a small CRC-framed prologue, then
self-framed chunk frames (magic + length + CRC32C each) appended and
flushed independently, then an *optional* clean-close trailer.  A v4
file truncated at any byte still yields every fully-flushed chunk.

The fingerprint ties a compressed blob to the specification that produced
it, so decompressing with a mismatched generated compressor fails loudly
instead of producing garbage.  :func:`decode_container` dispatches on the
version byte; v1 and v2 blobs remain readable forever.

Decoding is hardened against hostile metadata: every declared count and
length is validated against the bytes that actually remain before any
allocation happens (no varint allocation bombs), and per-stream raw
lengths are capped by ``max_chunk_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ChecksumError,
    CompressedFormatError,
    TruncatedContainerError,
)
from repro.tio.blockio import ByteReader, ByteWriter
from repro.tio.checksum import crc32c
from repro.tio.skipindex import (
    INDEX_MAGIC,
    SkipIndex,
    encode_index_frame,
    parse_index_frame,
)

MAGIC = b"TCGN"
TRAILER_MAGIC = b"TCEN"
FORMAT_VERSION = 1
FORMAT_VERSION_2 = 2
FORMAT_VERSION_3 = 3
#: Append-only streaming framing (self-framed flushable chunks); the wire
#: layout and recovery semantics live in :mod:`repro.tio.streamv4`.
FORMAT_VERSION_4 = 4

#: Target raw bytes per chunk when the caller asks for automatic sizing.
DEFAULT_CHUNK_BYTES = 1 << 20

#: Upper bound on any single declared (decompressed) stream length.  A
#: hostile header cannot make a decoder allocate more than this per stream,
#: no matter what its varints claim.
DEFAULT_MAX_CHUNK_BYTES = 1 << 30

#: Decode modes accepted by :func:`decode_container`.
DECODE_MODES = ("strict", "salvage")


def default_chunk_records(record_bytes: int) -> int:
    """Records per chunk so one chunk holds ~:data:`DEFAULT_CHUNK_BYTES`."""
    return max(1, DEFAULT_CHUNK_BYTES // max(1, record_bytes))


@dataclass
class DecodeReport:
    """What a decode saw: which chunks survived, which were lost, and why.

    Strict decodes fill one in (fully intact or the decode raised); salvage
    decodes use it to enumerate exactly what could and could not be
    recovered.  ``lost_chunks``/``recovered_chunks`` hold 0-based chunk
    indices into the *original* chunk table; ``reasons`` maps each lost
    index to a human-readable cause.
    """

    version: int | None = None
    mode: str = "strict"
    total_chunks: int | None = None
    total_records: int | None = None
    recovered_chunks: list[int] = field(default_factory=list)
    lost_chunks: list[int] = field(default_factory=list)
    reasons: dict[int, str] = field(default_factory=dict)
    recovered_records: int = 0
    lost_records: int = 0
    #: The container framing (magic, version, metadata, chunk table) was
    #: unreadable — nothing could be located, let alone recovered.
    header_damaged: bool = False
    #: The global stream section (the trace header) was damaged.
    header_stream_lost: bool = False
    trailer_damaged: bool = False
    truncated: bool = False
    #: A v4 stream ended *inside* a chunk frame: the partial flush at the
    #: tail was dropped.  Distinct from ``truncated`` (which for v4 marks
    #: the open-stream state: a clean end at a frame boundary with no
    #: close trailer) and from a lost chunk (mid-stream corruption).
    torn_tail: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def intact(self) -> bool:
        """True when nothing at all was damaged."""
        return not (
            self.lost_chunks
            or self.header_damaged
            or self.header_stream_lost
            or self.trailer_damaged
            or self.truncated
            or self.torn_tail
            or self.notes
        )

    @property
    def clean_truncation(self) -> bool:
        """True when the only damage is a cut-off tail, never corruption.

        Covers the v4 streaming states — an open stream (no close
        trailer), a torn final flush, or a damaged/missing trailer — and
        the analogous v3 tail truncation, *provided* every chunk before
        the cut survived.  A clean truncation recovers exactly the
        records below the last durable flush watermark, so callers (the
        ``tcgen-stream`` CLI, the server's recovery path) treat it as a
        successful partial read, not corruption.
        """
        if self.header_damaged or self.header_stream_lost or self.lost_chunks:
            return False
        return self.truncated or self.torn_tail or self.trailer_damaged

    def mark_recovered(self, index: int, records: int) -> None:
        self.recovered_chunks.append(index)
        self.recovered_records += records

    def mark_lost(self, index: int, records: int, reason: str) -> None:
        self.lost_chunks.append(index)
        self.reasons[index] = reason
        self.lost_records += records

    def demote(self, index: int, records: int, reason: str) -> None:
        """Move a chunk from recovered to lost (decode failed after framing)."""
        self.recovered_chunks.remove(index)
        self.recovered_records -= records
        self.mark_lost(index, records, reason)

    def render(self) -> str:
        """Human-readable summary, one fact per line."""
        lines = [
            f"decode report (mode={self.mode}, "
            f"container v{self.version if self.version is not None else '?'})"
        ]
        if self.intact:
            lines.append("  intact: all chunks recovered")
        if self.header_damaged:
            lines.append("  container framing unreadable: nothing recovered")
        if self.header_stream_lost:
            lines.append("  trace header stream lost (zero-filled on output)")
        if self.truncated:
            lines.append("  container is truncated")
        if self.torn_tail:
            lines.append(
                "  torn tail: the final partial chunk frame was dropped "
                "(all flushed records recovered)"
            )
        if self.trailer_damaged:
            lines.append("  end-of-stream trailer missing or damaged")
        if self.clean_truncation:
            lines.append(
                "  clean truncation: every chunk before the cut survived"
            )
        if self.total_chunks is not None:
            lines.append(
                f"  chunks: {len(self.recovered_chunks)}/{self.total_chunks} "
                f"recovered, {len(self.lost_chunks)} lost"
            )
            lines.append(
                f"  records: {self.recovered_records} recovered, "
                f"{self.lost_records} lost"
            )
        for index in self.lost_chunks:
            lines.append(f"  lost chunk {index}: {self.reasons[index]}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass
class StreamPayload:
    """One post-compressed stream: codec id, original size, stored bytes."""

    codec_id: int
    raw_length: int
    data: bytes


@dataclass
class StreamContainer:
    """A parsed compressed blob: fingerprint, record count, and streams."""

    fingerprint: int
    record_count: int
    streams: list[StreamPayload]

    def encode(self) -> bytes:
        """Serialize the container to bytes."""
        writer = ByteWriter()
        writer.write_bytes(MAGIC)
        writer.write_u8(FORMAT_VERSION)
        writer.write_u64(self.fingerprint)
        writer.write_varint(self.record_count)
        writer.write_varint(len(self.streams))
        for stream in self.streams:
            writer.write_u8(stream.codec_id)
            writer.write_varint(stream.raw_length)
            writer.write_varint(len(stream.data))
        for stream in self.streams:
            writer.write_bytes(stream.data)
        return writer.getvalue()

    @classmethod
    def decode(
        cls,
        blob: bytes,
        expected_fingerprint: int | None = None,
        *,
        max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
    ) -> "StreamContainer":
        """Parse a container, optionally checking the spec fingerprint."""
        reader = ByteReader(blob)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
        version = reader.read_u8()
        if version != FORMAT_VERSION:
            raise CompressedFormatError(f"unsupported container version {version}")
        fingerprint = reader.read_u64()
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise CompressedFormatError(
                f"spec fingerprint mismatch: blob has {fingerprint:#018x}, "
                f"decompressor expects {expected_fingerprint:#018x}"
            )
        record_count = reader.read_varint()
        stream_count = reader.read_count("stream count", 3)
        metas = [
            _read_stream_meta(reader, max_chunk_bytes, len(blob))
            for _ in range(stream_count)
        ]
        streams = [
            StreamPayload(codec_id, raw_length, reader.read_bytes(stored_length))
            for codec_id, raw_length, stored_length in metas
        ]
        if not reader.at_end():
            raise CompressedFormatError(
                f"{reader.remaining()} trailing bytes after last stream"
            )
        return cls(fingerprint=fingerprint, record_count=record_count, streams=streams)


@dataclass
class ContainerChunk:
    """One independent chunk: its record count and per-chunk streams."""

    record_count: int
    streams: list[StreamPayload]


@dataclass
class ChunkedContainer:
    """A parsed v2/v3 blob: global streams plus independent record chunks.

    ``version`` selects the wire framing :meth:`encode` emits —
    :data:`FORMAT_VERSION_3` (the default) adds CRC32C integrity framing,
    :data:`FORMAT_VERSION_2` is the legacy unchecked layout.  Decoding
    sets it to the version byte that was actually read.
    """

    fingerprint: int
    record_count: int
    chunk_records: int
    global_streams: list[StreamPayload] = field(default_factory=list)
    chunks: list[ContainerChunk] = field(default_factory=list)
    version: int = FORMAT_VERSION_3
    # Optional chunk skip index (repro.tio.skipindex).  On v3 it rides as
    # a self-checking TCIX frame appended after the TCEN trailer, on v4
    # as a TCIX frame before the TCST trailer; v2 has nowhere to put it
    # and encode() silently drops it.
    skip_index: "SkipIndex | None" = None

    def _encode_metadata(self, version: int) -> ByteWriter:
        writer = ByteWriter()
        writer.write_bytes(MAGIC)
        writer.write_u8(version)
        writer.write_u64(self.fingerprint)
        writer.write_varint(self.record_count)
        writer.write_varint(self.chunk_records)
        writer.write_varint(len(self.global_streams))
        for stream in self.global_streams:
            _write_stream_meta(writer, stream)
        chunk_streams = len(self.chunks[0].streams) if self.chunks else 0
        writer.write_varint(chunk_streams)
        writer.write_varint(len(self.chunks))
        for chunk in self.chunks:
            if len(chunk.streams) != chunk_streams:
                raise CompressedFormatError(
                    f"chunk holds {len(chunk.streams)} streams, "
                    f"expected {chunk_streams} like the first chunk"
                )
            writer.write_varint(chunk.record_count)
            for stream in chunk.streams:
                _write_stream_meta(writer, stream)
        return writer

    def encode(self) -> bytes:
        """Serialize the container to bytes (dispatching on ``version``)."""
        if self.version == FORMAT_VERSION_2:
            writer = self._encode_metadata(FORMAT_VERSION_2)
            for stream in self.global_streams:
                writer.write_bytes(stream.data)
            for chunk in self.chunks:
                for stream in chunk.streams:
                    writer.write_bytes(stream.data)
            return writer.getvalue()
        if self.version == FORMAT_VERSION_4:
            from repro.tio.streamv4 import encode_v4

            return encode_v4(self)
        if self.version != FORMAT_VERSION_3:
            raise CompressedFormatError(
                f"cannot encode container version {self.version}"
            )
        metadata = self._encode_metadata(FORMAT_VERSION_3).getvalue()
        header_crc = crc32c(metadata)
        out = bytearray(metadata)
        out += header_crc.to_bytes(4, "little")
        section_crcs = bytearray(header_crc.to_bytes(4, "little"))
        if self.global_streams:
            payload = b"".join(stream.data for stream in self.global_streams)
            crc = crc32c(payload)
            out += payload
            out += crc.to_bytes(4, "little")
            section_crcs += crc.to_bytes(4, "little")
        for chunk in self.chunks:
            payload = b"".join(stream.data for stream in chunk.streams)
            crc = crc32c(payload)
            out += payload
            out += crc.to_bytes(4, "little")
            section_crcs += crc.to_bytes(4, "little")
        out += TRAILER_MAGIC
        out += crc32c(bytes(section_crcs)).to_bytes(4, "little")
        if self.skip_index is not None:
            out += encode_index_frame(self.skip_index)
        return bytes(out)

    @classmethod
    def decode(
        cls,
        blob: bytes,
        expected_fingerprint: int | None = None,
        *,
        mode: str = "strict",
        max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
        report: DecodeReport | None = None,
    ) -> "ChunkedContainer":
        """Parse a v2 or v3 container, optionally checking the fingerprint.

        In ``salvage`` mode damaged chunks are dropped (and enumerated in
        ``report``) instead of raising; the returned container holds only
        the surviving chunks, aligned with ``report.recovered_chunks``.
        Metadata damage is not survivable — without a trustworthy chunk
        table nothing can be located — and is reported via
        ``report.header_damaged`` by :func:`decode_container`.
        """
        if mode not in DECODE_MODES:
            raise ValueError(f"unknown decode mode {mode!r}; expected one of {DECODE_MODES}")
        report = report if report is not None else DecodeReport()
        report.mode = mode
        reader = ByteReader(blob)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
        version = reader.read_u8()
        if version not in (FORMAT_VERSION_2, FORMAT_VERSION_3):
            raise CompressedFormatError(
                f"unsupported container version {version}, "
                f"expected {FORMAT_VERSION_2} or {FORMAT_VERSION_3}"
            )
        report.version = version
        fingerprint = reader.read_u64()
        record_count = reader.read_varint()
        chunk_records = reader.read_varint()
        global_count = reader.read_count("global stream count", 3)
        global_metas = [
            _read_stream_meta(reader, max_chunk_bytes, len(blob))
            for _ in range(global_count)
        ]
        chunk_streams = reader.read_varint()
        chunk_count = reader.read_count("chunk count", 1 + 3 * chunk_streams)
        chunk_metas: list[tuple[int, list[tuple[int, int, int]]]] = []
        total = 0
        for position in range(chunk_count):
            count = reader.read_varint()
            if count < 1:
                raise CompressedFormatError(f"chunk {position} holds no records")
            if position < chunk_count - 1 and count != chunk_records:
                raise CompressedFormatError(
                    f"chunk {position} holds {count} records, "
                    f"expected {chunk_records} for every chunk but the last"
                )
            if count > chunk_records:
                raise CompressedFormatError(
                    f"chunk {position} holds {count} records, "
                    f"more than the declared chunk size {chunk_records}"
                )
            total += count
            chunk_metas.append(
                (
                    count,
                    [
                        _read_stream_meta(reader, max_chunk_bytes, len(blob))
                        for _ in range(chunk_streams)
                    ],
                )
            )
        if total != record_count:
            raise CompressedFormatError(
                f"chunk table covers {total} records, container declares {record_count}"
            )
        report.total_chunks = chunk_count
        report.total_records = record_count

        if version == FORMAT_VERSION_3:
            meta_end = reader.position
            stored_crc = reader.read_u32()
            actual_crc = crc32c(blob[:meta_end])
            if stored_crc != actual_crc:
                raise ChecksumError(
                    "container header checksum mismatch", offset=meta_end
                )
        # The fingerprint check runs after the v3 header CRC: a mismatch on
        # a checksum-valid header is a genuinely wrong decompressor, not
        # corruption, and must raise even in salvage mode.
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise CompressedFormatError(
                f"spec fingerprint mismatch: blob has {fingerprint:#018x}, "
                f"decompressor expects {expected_fingerprint:#018x}"
            )

        container = cls(
            fingerprint=fingerprint,
            record_count=record_count,
            chunk_records=chunk_records,
            version=version,
        )
        if version == FORMAT_VERSION_2:
            cls._decode_v2_payloads(
                reader, container, global_metas, chunk_metas, mode, report
            )
        else:
            cls._decode_v3_payloads(
                reader, blob, container, global_metas, chunk_metas, mode, report
            )
        return container

    @classmethod
    def _decode_v2_payloads(cls, reader, container, global_metas, chunk_metas, mode, report):
        strict = mode == "strict"
        try:
            container.global_streams = [
                StreamPayload(codec_id, raw_length, reader.read_bytes(stored))
                for codec_id, raw_length, stored in global_metas
            ]
        except TruncatedContainerError as exc:
            if strict:
                raise
            report.header_stream_lost = bool(global_metas)
            report.truncated = True
            report.notes.append(f"global streams: {exc}")
            for index, (count, _metas) in enumerate(chunk_metas):
                report.mark_lost(index, count, "container truncated before chunk")
            return
        for index, (count, metas) in enumerate(chunk_metas):
            try:
                streams = [
                    StreamPayload(codec_id, raw_length, reader.read_bytes(stored))
                    for codec_id, raw_length, stored in metas
                ]
            except TruncatedContainerError as exc:
                if strict:
                    raise
                report.truncated = True
                report.mark_lost(index, count, str(exc))
                # Later chunks cannot start mid-payload: everything after a
                # truncation point is gone too.
                for later, (later_count, _m) in enumerate(chunk_metas):
                    if later > index:
                        report.mark_lost(
                            later, later_count, "container truncated before chunk"
                        )
                return
            container.chunks.append(ContainerChunk(record_count=count, streams=streams))
            report.mark_recovered(index, count)
        if not reader.at_end():
            if strict:
                raise CompressedFormatError(
                    f"{reader.remaining()} trailing bytes after last chunk"
                )
            report.notes.append(
                f"{reader.remaining()} trailing bytes after last chunk (ignored)"
            )

    @classmethod
    def _decode_v3_payloads(cls, reader, blob, container, global_metas, chunk_metas, mode, report):
        strict = mode == "strict"
        section_crcs = bytearray(blob[reader.position - 4 : reader.position])

        def read_section(metas, what, index=None):
            """Read one CRC-framed payload section; None when damaged."""
            size = sum(stored for _c, _r, stored in metas)
            start = reader.position
            try:
                payload = reader.read_bytes(size)
                stored_crc = reader.read_u32()
            except TruncatedContainerError as exc:
                if strict:
                    raise
                report.truncated = True
                return None, f"{exc}"
            section_crcs.extend(blob[reader.position - 4 : reader.position])
            if crc32c(payload) != stored_crc:
                if strict:
                    raise ChecksumError(
                        f"{what} payload checksum mismatch",
                        chunk_index=index,
                        offset=start,
                    )
                return None, f"{what} payload checksum mismatch at byte offset {start}"
            streams = []
            pos = 0
            for codec_id, raw_length, stored in metas:
                streams.append(
                    StreamPayload(codec_id, raw_length, payload[pos : pos + stored])
                )
                pos += stored
            return streams, None

        if global_metas:
            streams, problem = read_section(global_metas, "global stream")
            if streams is None:
                report.header_stream_lost = True
                report.notes.append(problem)
                if report.truncated:
                    for index, (count, _m) in enumerate(chunk_metas):
                        report.mark_lost(index, count, "container truncated before chunk")
                    return
            else:
                container.global_streams = streams

        truncated_at: int | None = None
        for index, (count, metas) in enumerate(chunk_metas):
            if truncated_at is not None:
                report.mark_lost(index, count, "container truncated before chunk")
                continue
            streams, problem = read_section(metas, f"chunk {index}", index)
            if streams is None:
                report.mark_lost(index, count, problem)
                if report.truncated:
                    truncated_at = index
                continue
            container.chunks.append(ContainerChunk(record_count=count, streams=streams))
            report.mark_recovered(index, count)
        if truncated_at is not None:
            report.trailer_damaged = True
            return

        try:
            trailer_magic = reader.read_bytes(4)
            trailer_crc = reader.read_u32()
        except TruncatedContainerError as exc:
            if strict:
                raise
            report.trailer_damaged = True
            report.notes.append(f"trailer: {exc}")
            return
        if trailer_magic != TRAILER_MAGIC:
            if strict:
                raise CompressedFormatError(
                    f"bad trailer magic {trailer_magic!r}, expected {TRAILER_MAGIC!r}"
                )
            report.trailer_damaged = True
            report.notes.append(f"bad trailer magic {trailer_magic!r}")
        elif trailer_crc != crc32c(bytes(section_crcs)):
            if strict:
                raise ChecksumError(
                    "trailer checksum mismatch", offset=reader.position - 4
                )
            report.trailer_damaged = True
            report.notes.append("trailer checksum mismatch")
        if blob[reader.position : reader.position + 4] == INDEX_MAGIC:
            try:
                index, end = parse_index_frame(blob, reader.position)
            except CompressedFormatError as exc:
                if strict:
                    raise
                report.notes.append(f"skip index unreadable, ignored: {exc}")
                return
            container.skip_index = index
            reader.seek(end)
        if not reader.at_end():
            if strict:
                raise CompressedFormatError(
                    f"{reader.remaining()} trailing bytes after trailer"
                )
            report.notes.append(
                f"{reader.remaining()} trailing bytes after trailer (ignored)"
            )


def _write_stream_meta(writer: ByteWriter, stream: StreamPayload) -> None:
    writer.write_u8(stream.codec_id)
    writer.write_varint(stream.raw_length)
    writer.write_varint(len(stream.data))


def _read_stream_meta(
    reader: ByteReader, max_chunk_bytes: int, blob_length: int
) -> tuple[int, int, int]:
    codec_id = reader.read_u8()
    raw_length = reader.read_varint()
    if raw_length > max_chunk_bytes:
        raise CompressedFormatError(
            f"declared stream length {raw_length} exceeds the "
            f"{max_chunk_bytes}-byte limit (max_chunk_bytes)"
        )
    stored = reader.read_varint()
    if stored > blob_length:
        raise TruncatedContainerError(
            f"declared stored length {stored} exceeds the whole "
            f"{blob_length}-byte container",
            offset=reader.position,
        )
    return codec_id, raw_length, stored


def container_version(blob: bytes) -> int:
    """The format version byte of a container blob (validates the magic).

    Raises :class:`CompressedFormatError` — naming the observed prefix —
    when the blob is too short to hold the magic and version byte or does
    not start with the container magic, so callers never need to
    pre-validate.
    """
    if len(blob) < 5:
        raise TruncatedContainerError(
            f"not a TCgen container: {len(blob)} bytes is too short to hold "
            f"the magic and version byte (got {bytes(blob)!r})",
            offset=len(blob),
        )
    if blob[:4] != MAGIC:
        raise CompressedFormatError(
            f"not a TCgen container: leading bytes {bytes(blob[:4])!r}, "
            f"expected {MAGIC!r}"
        )
    return blob[4]


def decode_container(
    blob: bytes,
    expected_fingerprint: int | None = None,
    *,
    mode: str = "strict",
    max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
    report: DecodeReport | None = None,
) -> "StreamContainer | ChunkedContainer":
    """Parse a container of any version, dispatching on the version byte.

    ``mode="strict"`` (the default) raises a typed
    :class:`~repro.errors.CompressedFormatError` subclass on any damage.
    ``mode="salvage"`` never raises for *corruption*: it returns whatever
    chunks survived and fills ``report`` (a :class:`DecodeReport`) with the
    indices and causes of everything lost.  A fingerprint mismatch on a
    checksum-valid v3 header still raises — that is a wrong decompressor,
    not a damaged blob.
    """
    if mode not in DECODE_MODES:
        raise ValueError(f"unknown decode mode {mode!r}; expected one of {DECODE_MODES}")
    report = report if report is not None else DecodeReport()
    report.mode = mode
    if mode == "strict":
        version = container_version(blob)
        if version == FORMAT_VERSION:
            container = StreamContainer.decode(
                blob, expected_fingerprint, max_chunk_bytes=max_chunk_bytes
            )
            report.version = FORMAT_VERSION
            report.total_chunks = 1 if container.record_count else 0
            report.total_records = container.record_count
            if container.record_count:
                report.mark_recovered(0, container.record_count)
            return container
        if version in (FORMAT_VERSION_2, FORMAT_VERSION_3):
            return ChunkedContainer.decode(
                blob,
                expected_fingerprint,
                mode=mode,
                max_chunk_bytes=max_chunk_bytes,
                report=report,
            )
        if version == FORMAT_VERSION_4:
            from repro.tio.streamv4 import decode_v4

            return decode_v4(
                blob,
                expected_fingerprint,
                mode=mode,
                max_chunk_bytes=max_chunk_bytes,
                report=report,
            )
        raise CompressedFormatError(f"unsupported container version {version}")

    # Salvage mode: framing-level damage means the chunk table cannot be
    # trusted, so nothing is recoverable — report it instead of raising.
    try:
        version = container_version(blob)
    except CompressedFormatError as exc:
        report.header_damaged = True
        report.notes.append(str(exc))
        return ChunkedContainer(
            fingerprint=0, record_count=0, chunk_records=0, version=0
        )
    if version == FORMAT_VERSION:
        # v1 has a single all-or-nothing chunk: either the whole blob
        # parses or nothing is recoverable.
        try:
            container = StreamContainer.decode(
                blob, expected_fingerprint, max_chunk_bytes=max_chunk_bytes
            )
        except CompressedFormatError as exc:
            report.version = FORMAT_VERSION
            report.header_damaged = True
            report.notes.append(str(exc))
            return ChunkedContainer(
                fingerprint=0, record_count=0, chunk_records=0, version=FORMAT_VERSION
            )
        report.version = FORMAT_VERSION
        report.total_chunks = 1 if container.record_count else 0
        report.total_records = container.record_count
        if container.record_count:
            report.mark_recovered(0, container.record_count)
        return container
    if version in (FORMAT_VERSION_2, FORMAT_VERSION_3):
        try:
            return ChunkedContainer.decode(
                blob,
                expected_fingerprint,
                mode=mode,
                max_chunk_bytes=max_chunk_bytes,
                report=report,
            )
        except ChecksumError as exc:
            # v3 metadata damage: the chunk table itself is untrustworthy.
            report.header_damaged = True
            report.notes.append(str(exc))
        except CompressedFormatError as exc:
            if "fingerprint mismatch" in str(exc) and version == FORMAT_VERSION_3:
                raise  # checksum-valid header, genuinely wrong decompressor
            report.header_damaged = True
            report.notes.append(str(exc))
        return ChunkedContainer(
            fingerprint=0, record_count=0, chunk_records=0, version=version
        )
    if version == FORMAT_VERSION_4:
        from repro.tio.streamv4 import decode_v4

        try:
            return decode_v4(
                blob,
                expected_fingerprint,
                mode=mode,
                max_chunk_bytes=max_chunk_bytes,
                report=report,
            )
        except TruncatedContainerError as exc:
            # The prologue itself is cut off: no trustworthy metadata.
            report.header_damaged = True
            report.truncated = True
            report.notes.append(str(exc))
        except ChecksumError as exc:
            report.header_damaged = True
            report.notes.append(str(exc))
        except CompressedFormatError as exc:
            if "fingerprint mismatch" in str(exc):
                raise  # checksum-valid prologue, genuinely wrong decompressor
            report.header_damaged = True
            report.notes.append(str(exc))
        return ChunkedContainer(
            fingerprint=0, record_count=0, chunk_records=0, version=version
        )
    report.header_damaged = True
    report.notes.append(f"unsupported container version {version}")
    return ChunkedContainer(fingerprint=0, record_count=0, chunk_records=0, version=0)


def as_chunked(
    container: "StreamContainer | ChunkedContainer", global_streams: int = 0
) -> ChunkedContainer:
    """View either container version as a chunked container.

    A v1 container becomes a single chunk covering every record; its first
    ``global_streams`` streams (the header, when the format has one) move
    to the global section.  Predictor state resets once, at the start of
    the lone chunk — exactly the v1 semantics.
    """
    if isinstance(container, ChunkedContainer):
        return container
    if len(container.streams) < global_streams:
        raise CompressedFormatError(
            f"container holds {len(container.streams)} streams, "
            f"cannot split off {global_streams} global streams"
        )
    chunks = []
    if container.record_count:
        chunks.append(
            ContainerChunk(
                record_count=container.record_count,
                streams=container.streams[global_streams:],
            )
        )
    elif len(container.streams) > global_streams:
        # Zero records still carry (empty) per-field streams in v1.
        chunks.append(
            ContainerChunk(record_count=0, streams=container.streams[global_streams:])
        )
    return ChunkedContainer(
        fingerprint=container.fingerprint,
        record_count=container.record_count,
        chunk_records=container.record_count,
        global_streams=container.streams[:global_streams],
        chunks=chunks,
        version=FORMAT_VERSION,
    )
