"""Compressed-stream container format.

A TCgen-style compressor converts a trace into several streams (one
predictor-code stream and one unpredictable-value stream per field, plus a
header stream) and post-compresses each stream individually.  This module
defines the framing that holds those post-compressed streams together in a
single blob:

```
magic "TCGN" | format version (u8) | spec fingerprint (u64)
record count (varint) | stream count (varint)
per stream: codec id (u8) | raw length (varint) | stored length (varint)
stream payloads, concatenated
```

The fingerprint ties a compressed blob to the specification that produced
it, so decompressing with a mismatched generated compressor fails loudly
instead of producing garbage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader, ByteWriter

MAGIC = b"TCGN"
FORMAT_VERSION = 1


@dataclass
class StreamPayload:
    """One post-compressed stream: codec id, original size, stored bytes."""

    codec_id: int
    raw_length: int
    data: bytes


@dataclass
class StreamContainer:
    """A parsed compressed blob: fingerprint, record count, and streams."""

    fingerprint: int
    record_count: int
    streams: list[StreamPayload]

    def encode(self) -> bytes:
        """Serialize the container to bytes."""
        writer = ByteWriter()
        writer.write_bytes(MAGIC)
        writer.write_u8(FORMAT_VERSION)
        writer.write_u64(self.fingerprint)
        writer.write_varint(self.record_count)
        writer.write_varint(len(self.streams))
        for stream in self.streams:
            writer.write_u8(stream.codec_id)
            writer.write_varint(stream.raw_length)
            writer.write_varint(len(stream.data))
        for stream in self.streams:
            writer.write_bytes(stream.data)
        return writer.getvalue()

    @classmethod
    def decode(cls, blob: bytes, expected_fingerprint: int | None = None) -> "StreamContainer":
        """Parse a container, optionally checking the spec fingerprint."""
        reader = ByteReader(blob)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
        version = reader.read_u8()
        if version != FORMAT_VERSION:
            raise CompressedFormatError(f"unsupported container version {version}")
        fingerprint = reader.read_u64()
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise CompressedFormatError(
                f"spec fingerprint mismatch: blob has {fingerprint:#018x}, "
                f"decompressor expects {expected_fingerprint:#018x}"
            )
        record_count = reader.read_varint()
        stream_count = reader.read_varint()
        metas = [
            (reader.read_u8(), reader.read_varint(), reader.read_varint())
            for _ in range(stream_count)
        ]
        streams = [
            StreamPayload(codec_id, raw_length, reader.read_bytes(stored_length))
            for codec_id, raw_length, stored_length in metas
        ]
        if not reader.at_end():
            raise CompressedFormatError(
                f"{reader.remaining()} trailing bytes after last stream"
            )
        return cls(fingerprint=fingerprint, record_count=record_count, streams=streams)
