"""Compressed-stream container formats.

A TCgen-style compressor converts a trace into several streams (one
predictor-code stream and one unpredictable-value stream per field, plus a
header stream) and post-compresses each stream individually.  This module
defines the framing that holds those post-compressed streams together in a
single blob.

**Version 1** (:class:`StreamContainer`) is a flat list of streams:

```
magic "TCGN" | format version (u8 = 1) | spec fingerprint (u64)
record count (varint) | stream count (varint)
per stream: codec id (u8) | raw length (varint) | stored length (varint)
stream payloads, concatenated
```

**Version 2** (:class:`ChunkedContainer`) splits the trace into fixed-size
record chunks so chunks can be compressed, decompressed, and seeked
independently (predictor state resets at every chunk boundary):

```
magic "TCGN" | format version (u8 = 2) | spec fingerprint (u64)
record count (varint) | chunk records (varint)
global stream count (varint)
per global stream: codec id (u8) | raw length (varint) | stored length (varint)
chunk stream count (varint) | chunk count (varint)
per chunk: record count (varint)
           per stream: codec id (u8) | raw length (varint) | stored length (varint)
global stream payloads, then per-chunk stream payloads, concatenated
```

Global streams hold whole-trace data (the trace header); every chunk
carries the same number of per-chunk streams (one code and one value
stream per field).  All chunks except the last hold exactly ``chunk
records`` records, which makes record→chunk arithmetic trivial for
random access.

The fingerprint ties a compressed blob to the specification that produced
it, so decompressing with a mismatched generated compressor fails loudly
instead of producing garbage.  :func:`decode_container` dispatches on the
version byte; v1 blobs remain readable forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader, ByteWriter

MAGIC = b"TCGN"
FORMAT_VERSION = 1
FORMAT_VERSION_2 = 2

#: Target raw bytes per chunk when the caller asks for automatic sizing.
DEFAULT_CHUNK_BYTES = 1 << 20


def default_chunk_records(record_bytes: int) -> int:
    """Records per chunk so one chunk holds ~:data:`DEFAULT_CHUNK_BYTES`."""
    return max(1, DEFAULT_CHUNK_BYTES // max(1, record_bytes))


@dataclass
class StreamPayload:
    """One post-compressed stream: codec id, original size, stored bytes."""

    codec_id: int
    raw_length: int
    data: bytes


@dataclass
class StreamContainer:
    """A parsed compressed blob: fingerprint, record count, and streams."""

    fingerprint: int
    record_count: int
    streams: list[StreamPayload]

    def encode(self) -> bytes:
        """Serialize the container to bytes."""
        writer = ByteWriter()
        writer.write_bytes(MAGIC)
        writer.write_u8(FORMAT_VERSION)
        writer.write_u64(self.fingerprint)
        writer.write_varint(self.record_count)
        writer.write_varint(len(self.streams))
        for stream in self.streams:
            writer.write_u8(stream.codec_id)
            writer.write_varint(stream.raw_length)
            writer.write_varint(len(stream.data))
        for stream in self.streams:
            writer.write_bytes(stream.data)
        return writer.getvalue()

    @classmethod
    def decode(cls, blob: bytes, expected_fingerprint: int | None = None) -> "StreamContainer":
        """Parse a container, optionally checking the spec fingerprint."""
        reader = ByteReader(blob)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
        version = reader.read_u8()
        if version != FORMAT_VERSION:
            raise CompressedFormatError(f"unsupported container version {version}")
        fingerprint = reader.read_u64()
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise CompressedFormatError(
                f"spec fingerprint mismatch: blob has {fingerprint:#018x}, "
                f"decompressor expects {expected_fingerprint:#018x}"
            )
        record_count = reader.read_varint()
        stream_count = reader.read_varint()
        metas = [
            (reader.read_u8(), reader.read_varint(), reader.read_varint())
            for _ in range(stream_count)
        ]
        streams = [
            StreamPayload(codec_id, raw_length, reader.read_bytes(stored_length))
            for codec_id, raw_length, stored_length in metas
        ]
        if not reader.at_end():
            raise CompressedFormatError(
                f"{reader.remaining()} trailing bytes after last stream"
            )
        return cls(fingerprint=fingerprint, record_count=record_count, streams=streams)


@dataclass
class ContainerChunk:
    """One independent chunk: its record count and per-chunk streams."""

    record_count: int
    streams: list[StreamPayload]


@dataclass
class ChunkedContainer:
    """A parsed v2 blob: global streams plus independent record chunks."""

    fingerprint: int
    record_count: int
    chunk_records: int
    global_streams: list[StreamPayload] = field(default_factory=list)
    chunks: list[ContainerChunk] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialize the container to bytes (format version 2)."""
        writer = ByteWriter()
        writer.write_bytes(MAGIC)
        writer.write_u8(FORMAT_VERSION_2)
        writer.write_u64(self.fingerprint)
        writer.write_varint(self.record_count)
        writer.write_varint(self.chunk_records)
        writer.write_varint(len(self.global_streams))
        for stream in self.global_streams:
            _write_stream_meta(writer, stream)
        chunk_streams = len(self.chunks[0].streams) if self.chunks else 0
        writer.write_varint(chunk_streams)
        writer.write_varint(len(self.chunks))
        for chunk in self.chunks:
            if len(chunk.streams) != chunk_streams:
                raise CompressedFormatError(
                    f"chunk holds {len(chunk.streams)} streams, "
                    f"expected {chunk_streams} like the first chunk"
                )
            writer.write_varint(chunk.record_count)
            for stream in chunk.streams:
                _write_stream_meta(writer, stream)
        for stream in self.global_streams:
            writer.write_bytes(stream.data)
        for chunk in self.chunks:
            for stream in chunk.streams:
                writer.write_bytes(stream.data)
        return writer.getvalue()

    @classmethod
    def decode(cls, blob: bytes, expected_fingerprint: int | None = None) -> "ChunkedContainer":
        """Parse a v2 container, optionally checking the spec fingerprint."""
        reader = ByteReader(blob)
        magic = reader.read_bytes(4)
        if magic != MAGIC:
            raise CompressedFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
        version = reader.read_u8()
        if version != FORMAT_VERSION_2:
            raise CompressedFormatError(
                f"unsupported container version {version}, expected {FORMAT_VERSION_2}"
            )
        fingerprint = reader.read_u64()
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise CompressedFormatError(
                f"spec fingerprint mismatch: blob has {fingerprint:#018x}, "
                f"decompressor expects {expected_fingerprint:#018x}"
            )
        record_count = reader.read_varint()
        chunk_records = reader.read_varint()
        global_count = reader.read_varint()
        global_metas = [_read_stream_meta(reader) for _ in range(global_count)]
        chunk_streams = reader.read_varint()
        chunk_count = reader.read_varint()
        chunk_metas: list[tuple[int, list[tuple[int, int, int]]]] = []
        total = 0
        for position in range(chunk_count):
            count = reader.read_varint()
            if count < 1:
                raise CompressedFormatError(f"chunk {position} holds no records")
            if position < chunk_count - 1 and count != chunk_records:
                raise CompressedFormatError(
                    f"chunk {position} holds {count} records, "
                    f"expected {chunk_records} for every chunk but the last"
                )
            if count > chunk_records:
                raise CompressedFormatError(
                    f"chunk {position} holds {count} records, "
                    f"more than the declared chunk size {chunk_records}"
                )
            total += count
            chunk_metas.append(
                (count, [_read_stream_meta(reader) for _ in range(chunk_streams)])
            )
        if total != record_count:
            raise CompressedFormatError(
                f"chunk table covers {total} records, container declares {record_count}"
            )
        global_streams = [
            StreamPayload(codec_id, raw_length, reader.read_bytes(stored))
            for codec_id, raw_length, stored in global_metas
        ]
        chunks = [
            ContainerChunk(
                record_count=count,
                streams=[
                    StreamPayload(codec_id, raw_length, reader.read_bytes(stored))
                    for codec_id, raw_length, stored in metas
                ],
            )
            for count, metas in chunk_metas
        ]
        if not reader.at_end():
            raise CompressedFormatError(
                f"{reader.remaining()} trailing bytes after last chunk"
            )
        return cls(
            fingerprint=fingerprint,
            record_count=record_count,
            chunk_records=chunk_records,
            global_streams=global_streams,
            chunks=chunks,
        )


def _write_stream_meta(writer: ByteWriter, stream: StreamPayload) -> None:
    writer.write_u8(stream.codec_id)
    writer.write_varint(stream.raw_length)
    writer.write_varint(len(stream.data))


def _read_stream_meta(reader: ByteReader) -> tuple[int, int, int]:
    return reader.read_u8(), reader.read_varint(), reader.read_varint()


def container_version(blob: bytes) -> int:
    """The format version byte of a container blob (validates the magic)."""
    if len(blob) < 5 or blob[:4] != MAGIC:
        raise CompressedFormatError("not a TCgen container")
    return blob[4]


def decode_container(
    blob: bytes, expected_fingerprint: int | None = None
) -> "StreamContainer | ChunkedContainer":
    """Parse a container of either version, dispatching on the version byte."""
    version = container_version(blob)
    if version == FORMAT_VERSION:
        return StreamContainer.decode(blob, expected_fingerprint)
    if version == FORMAT_VERSION_2:
        return ChunkedContainer.decode(blob, expected_fingerprint)
    raise CompressedFormatError(f"unsupported container version {version}")


def as_chunked(
    container: "StreamContainer | ChunkedContainer", global_streams: int = 0
) -> ChunkedContainer:
    """View either container version as a chunked container.

    A v1 container becomes a single chunk covering every record; its first
    ``global_streams`` streams (the header, when the format has one) move
    to the global section.  Predictor state resets once, at the start of
    the lone chunk — exactly the v1 semantics.
    """
    if isinstance(container, ChunkedContainer):
        return container
    if len(container.streams) < global_streams:
        raise CompressedFormatError(
            f"container holds {len(container.streams)} streams, "
            f"cannot split off {global_streams} global streams"
        )
    chunks = []
    if container.record_count:
        chunks.append(
            ContainerChunk(
                record_count=container.record_count,
                streams=container.streams[global_streams:],
            )
        )
    elif len(container.streams) > global_streams:
        # Zero records still carry (empty) per-field streams in v1.
        chunks.append(
            ContainerChunk(record_count=0, streams=container.streams[global_streams:])
        )
    return ChunkedContainer(
        fingerprint=container.fingerprint,
        record_count=container.record_count,
        chunk_records=container.record_count,
        global_streams=container.streams[:global_streams],
        chunks=chunks,
    )
