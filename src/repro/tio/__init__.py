"""Trace input/output: block buffers, record formats, stream containers.

This package provides the byte-level substrate shared by the generated
compressors, the interpreted engine, and every baseline algorithm:

- :mod:`repro.tio.blockio` — little-endian buffered readers and writers,
- :mod:`repro.tio.traceformat` — fixed-width record formats and the VPC
  trace layout used throughout the paper's evaluation,
- :mod:`repro.tio.container` — the on-disk container that holds the
  post-compressed streams produced by a TCgen-style compressor.
"""

from repro.tio.blockio import ByteReader, ByteWriter, atomic_write_bytes
from repro.tio.checksum import crc32c
from repro.tio.container import (
    ChunkedContainer,
    ContainerChunk,
    DecodeReport,
    StreamContainer,
    StreamPayload,
    as_chunked,
    container_version,
    decode_container,
    default_chunk_records,
)
from repro.tio.traceformat import (
    TraceFormat,
    VPC_FORMAT,
    pack_records,
    unpack_records,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "ChunkedContainer",
    "ContainerChunk",
    "DecodeReport",
    "StreamContainer",
    "StreamPayload",
    "as_chunked",
    "atomic_write_bytes",
    "container_version",
    "crc32c",
    "decode_container",
    "default_chunk_records",
    "TraceFormat",
    "VPC_FORMAT",
    "pack_records",
    "unpack_records",
]
