"""Trace input/output: block buffers, record formats, stream containers.

This package provides the byte-level substrate shared by the generated
compressors, the interpreted engine, and every baseline algorithm:

- :mod:`repro.tio.blockio` — little-endian buffered readers and writers,
- :mod:`repro.tio.traceformat` — fixed-width record formats and the VPC
  trace layout used throughout the paper's evaluation,
- :mod:`repro.tio.container` — the on-disk container that holds the
  post-compressed streams produced by a TCgen-style compressor,
- :mod:`repro.tio.streamv4` — the append-only v4 stream framing with
  individually-flushable, crash-recoverable chunk frames,
- :mod:`repro.tio.skipindex` — the optional per-chunk skip index that
  makes archives queryable without full decompression.
"""

from repro.tio.blockio import ByteReader, ByteWriter, atomic_write_bytes
from repro.tio.checksum import crc32c
from repro.tio.container import (
    FORMAT_VERSION_4,
    ChunkedContainer,
    ContainerChunk,
    DecodeReport,
    StreamContainer,
    StreamPayload,
    as_chunked,
    container_version,
    decode_container,
    default_chunk_records,
)
from repro.tio.skipindex import (
    DEFAULT_BLOOM_BITS,
    INDEX_MAGIC,
    ChunkSummary,
    FieldSummary,
    SkipIndex,
    build_index,
    encode_index_frame,
    parse_index_frame,
    summarize_columns,
    summarize_raw,
)
from repro.tio.streamv4 import (
    CHUNK_MAGIC,
    STREAM_TRAILER_MAGIC,
    StreamScan,
    encode_chunk_frame,
    encode_prologue,
    encode_trailer,
    scan_stream,
)
from repro.tio.traceformat import (
    TraceFormat,
    VPC_FORMAT,
    pack_records,
    unpack_records,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "CHUNK_MAGIC",
    "ChunkSummary",
    "ChunkedContainer",
    "ContainerChunk",
    "DEFAULT_BLOOM_BITS",
    "DecodeReport",
    "FORMAT_VERSION_4",
    "FieldSummary",
    "INDEX_MAGIC",
    "SkipIndex",
    "STREAM_TRAILER_MAGIC",
    "StreamContainer",
    "StreamPayload",
    "StreamScan",
    "as_chunked",
    "atomic_write_bytes",
    "build_index",
    "container_version",
    "crc32c",
    "decode_container",
    "default_chunk_records",
    "encode_chunk_frame",
    "encode_index_frame",
    "encode_prologue",
    "encode_trailer",
    "pack_records",
    "parse_index_frame",
    "scan_stream",
    "summarize_columns",
    "summarize_raw",
    "unpack_records",
    "TraceFormat",
    "VPC_FORMAT",
]
