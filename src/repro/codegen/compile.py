"""Loading and compiling generated compressors.

Generated Python modules are compiled with :func:`compile` and executed in
a fresh module namespace; generated C is compiled with the system C
compiler (``cc``/``gcc``) and driven through stdin/stdout pipes, exactly
like the paper's workflow of synthesizing, compiling with ``-O3``, and
running the resulting filter.
"""

from __future__ import annotations

from dataclasses import dataclass
import os
import shutil
import subprocess
import sys
import tempfile
import types

from repro.errors import CodegenError

_module_counter = 0


def load_python_module(source: str, name: str | None = None) -> types.ModuleType:
    """Compile and import generated Python source as a fresh module."""
    global _module_counter
    _module_counter += 1
    name = name or f"tcgen_generated_{_module_counter}"
    module = types.ModuleType(name)
    module.__file__ = f"<{name}>"
    try:
        code = compile(source, module.__file__, "exec")
    except SyntaxError as exc:
        raise CodegenError(f"generated Python does not compile: {exc}") from exc
    exec(code, module.__dict__)
    for required in ("compress", "decompress"):
        if not callable(module.__dict__.get(required)):
            raise CodegenError(f"generated module lacks {required}()")
    return module


#: Sentinel distinguishing "not probed yet" from "probed, none found".
_COMPILER_UNSET = object()
_compiler_memo: object = _COMPILER_UNSET


def find_c_compiler() -> str | None:
    """Locate a C compiler, preferring ``cc`` like the paper's platform.

    ``TCGEN_CC`` overrides the probe entirely (a name resolved on PATH,
    or an absolute path) — CI uses it to pin gcc vs clang.  The probe
    runs once per process and is memoized — both the subprocess backend
    and the native fast path call this on every build, and spawning
    ``shutil.which`` lookups per call is wasted work.  Tests that
    manipulate PATH or ``TCGEN_CC`` should call
    :func:`clear_compiler_cache`.
    """
    global _compiler_memo
    if _compiler_memo is _COMPILER_UNSET:
        override = os.environ.get("TCGEN_CC")
        if override:
            _compiler_memo = (
                override
                if os.path.isabs(override) and os.access(override, os.X_OK)
                else shutil.which(override)
            )
        else:
            _compiler_memo = next(
                (
                    path
                    for candidate in ("cc", "gcc", "clang")
                    if (path := shutil.which(candidate))
                ),
                None,
            )
    return _compiler_memo  # type: ignore[return-value]


def clear_compiler_cache() -> None:
    """Forget the memoized compiler path (for tests that change PATH)."""
    global _compiler_memo
    _compiler_memo = _COMPILER_UNSET


@dataclass
class CompiledC:
    """A compiled generated-C compressor, driven via pipes."""

    binary_path: str
    source_path: str

    def compress(self, raw: bytes) -> bytes:
        return self._run([], raw)

    def decompress(self, blob: bytes) -> bytes:
        return self._run(["-d"], blob)

    def _run(self, args: list[str], data: bytes) -> bytes:
        result = subprocess.run(
            [self.binary_path, *args],
            input=data,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        if result.returncode != 0:
            raise CodegenError(
                f"generated binary failed ({result.returncode}): "
                f"{result.stderr.decode(errors='replace')[:500]}"
            )
        return result.stdout


def compile_c(
    source: str,
    workdir: str | None = None,
    compiler: str | None = None,
    libs: tuple[str, ...] = ("-lbz2",),
) -> CompiledC:
    """Compile generated C source into an executable filter."""
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise CodegenError("no C compiler found (tried cc, gcc, clang)")
    workdir = workdir or tempfile.mkdtemp(prefix="tcgen_c_")
    source_path = os.path.join(workdir, "compressor.c")
    binary_path = os.path.join(workdir, "compressor")
    with open(source_path, "w") as handle:
        handle.write(source)
    command = [compiler, "-O3", "-o", binary_path, source_path, *libs]
    result = subprocess.run(command, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if result.returncode != 0:
        raise CodegenError(
            "C compilation failed:\n" + result.stderr.decode(errors="replace")[:2000]
        )
    return CompiledC(binary_path=binary_path, source_path=source_path)


def generate_and_compile_c(model, codec: str = "bzip2", workdir: str | None = None) -> CompiledC:
    """Convenience: generate C for ``model`` and compile it."""
    from repro.codegen.c_backend import generate_c

    source = generate_c(model, codec=codec)
    libs: tuple[str, ...]
    if codec == "bzip2":
        libs = ("-lbz2",)
    elif codec == "zlib":
        libs = ("-lz",)
    else:
        libs = ()
    return compile_c(source, workdir=workdir, libs=libs)


def default_python_executable() -> str:
    return sys.executable
