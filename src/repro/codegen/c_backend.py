"""C code generation backend.

Emits one self-contained C source file in the style the paper describes
(Section 5.1): all functions except ``main`` are ``static``, globals are
``static``, locals are ``register`` where possible, there are no macros,
one statement per line, meaningful names, and all I/O uses block calls
with values assembled byte-by-byte to avoid alignment problems.

The compiled binary is a filter: it compresses a trace from stdin to a
container on stdout (printing the predictor-usage feedback to stderr) and
decompresses with the ``-d`` flag.  Containers are stream-for-stream
identical to the interpreted engine and the generated Python module; when
the system's libbz2 matches the one behind Python's ``bz2`` they are
byte-identical.
"""

from __future__ import annotations

from repro.codegen.plan import ChainStruct, FieldPlan, plan_field
from repro.codegen.writer import CodeWriter
from repro.errors import CodegenError
from repro.model.layout import CompressorModel
from repro.postcompress import codec_by_name
from repro.predictors.hashing import HashParams
from repro.spec.ast import PredictorKind
from repro.spec.canonical import format_spec

_CTYPES = {1: "u8", 2: "u16", 4: "u32", 8: "u64"}


def _hex64(value: int) -> str:
    return f"0x{value:x}ULL"


def _fold_expr(var: str, width_bits: int, params: HashParams) -> str:
    fb = params.fold_bits
    if width_bits <= fb:
        return var
    parts = [var]
    shift = fb
    while shift < width_bits:
        parts.append(f"({var} >> {shift})")
        shift += fb
    return f"({' ^ '.join(parts)}) & {_hex64((1 << fb) - 1)}"


class _CFieldEmitter:
    """Emits C begin/commit logic for one field (mirrors the kernel).

    ``facts`` is the field's :class:`repro.ir.analysis.FieldFacts` (or
    None to reproduce the pre-IR output exactly, pinned by the
    differential tests); with facts, provably redundant masks and
    smart-update guards are elided.
    """

    def __init__(self, plan: FieldPlan, smart: bool, facts=None) -> None:
        self.plan = plan
        self.layout = plan.layout
        self.smart = smart
        self.facts = facts
        self.f = self.layout.index

    def _table_smart(self, table: str) -> bool:
        if not self.smart:
            return False
        return self.facts is None or table not in self.facts.plain_store

    def _table_depth(self, table: str, depth: int) -> int:
        if self.facts is None:
            return depth
        return min(depth, self.facts.live_depth.get(table, depth))

    def _base_expr(self, line_var: str | None, span: int) -> str | None:
        if line_var is None:
            return None
        if span == 1:
            return line_var
        return f"{line_var} * {span}"

    def _slot(self, base: str | None, offset: int) -> str:
        if base is None:
            return str(offset)
        if offset == 0:
            return base
        return f"{base} + {offset}"

    def emit_begin(self, w: CodeWriter, pc_var: str) -> dict:
        layout = self.layout
        f = self.f
        w.line(f"/* field {f}: compute table indices and predictions */")
        line_var = None
        if layout.l1_lines > 1:
            line_var = f"line{f}"
            if self.facts is not None and self.facts.elide_line_mask:
                # Range analysis proved pc < l1_lines: the mask is identity.
                w.line(f"register u64 {line_var} = {pc_var};")
            else:
                w.line(f"register u64 {line_var} = {pc_var} & {layout.l1_lines - 1}ULL;")

        vars: dict = {
            "line": line_var,
            "lv_base": None,
            "last_first": None,
            "chain_bases": {},
            "index_vars": {},
            "l2_bases": {},
            "predictions": [],
        }
        lasts = self.plan.lasts
        if lasts:
            first = lasts[0]
            base = self._base_expr(line_var, first.depth)
            if base is not None and first.depth > 1:
                vars["lv_base"] = f"lvbase{f}"
                w.line(f"register u64 {vars['lv_base']} = {base};")
            elif base is not None:
                vars["lv_base"] = base
            if layout.needs_stride:
                vars["last_first"] = f"last{f}"
                w.line(
                    f"register u64 {vars['last_first']} = "
                    f"{first.name}[{self._slot(vars['lv_base'], 0)}];"
                )

        for chain in self.plan.chains:
            base = self._base_expr(line_var, chain.span)
            if base is not None and ("*" in base or chain.span > 1):
                name = f"{chain.name}_base"
                w.line(f"register u64 {name} = {base};")
                vars["chain_bases"][chain.name] = name
            else:
                vars["chain_bases"][chain.name] = base

        for pred in self.plan.predictors:
            if pred.chain is None:
                continue
            index_var = f"index{f}_{pred.slot}"
            vars["index_vars"][pred.slot] = index_var
            base = vars["chain_bases"][pred.chain.name]
            if pred.chain.fast:
                w.line(
                    f"register u64 {index_var} = "
                    f"{pred.chain.name}[{self._slot(base, pred.order - 1)}];"
                )
            else:
                self._emit_scratch_hash(w, pred, base, index_var)

        code = 0
        for pred in self.plan.predictors:
            if pred.kind is PredictorKind.LV:
                lv = pred.last
                base = vars["lv_base"]
                if lv is not lasts[0]:
                    base = self._base_expr(line_var, lv.depth)
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(f"register u64 {pvar} = {lv.name}[{self._slot(base, slot)}];")
                    vars["predictions"].append(pvar)
                    code += 1
                continue
            l2_base = f"l2base{f}_{pred.slot}"
            index_var = vars["index_vars"][pred.slot]
            if pred.depth > 1:
                w.line(f"register u64 {l2_base} = {index_var} * {pred.depth};")
            else:
                l2_base = index_var
            vars["l2_bases"][pred.slot] = l2_base
            if pred.kind is PredictorKind.FCM:
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(
                        f"register u64 {pvar} = "
                        f"{pred.l2.name}[{self._slot(l2_base, slot)}];"
                    )
                    vars["predictions"].append(pvar)
                    code += 1
            else:
                last_var = vars["last_first"]
                if pred.last is not lasts[0]:
                    private = self._base_expr(line_var, 1)
                    last_var = f"last{f}_{pred.slot}"
                    w.line(
                        f"register u64 {last_var} = "
                        f"{pred.last.name}[{self._slot(private, 0)}];"
                    )
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(
                        f"register u64 {pvar} = ({last_var} + "
                        f"{pred.l2.name}[{self._slot(l2_base, slot)}]) & "
                        f"{_hex64(self.layout.mask)};"
                    )
                    vars["predictions"].append(pvar)
                    code += 1
        return vars

    def _emit_scratch_hash(self, w: CodeWriter, pred, base: str | None, out: str) -> None:
        chain = pred.chain
        params = chain.params
        w.line(f"/* order-{pred.order} hash of {chain.name} from scratch */")
        hash_var = f"scratch{self.f}_{pred.slot}"
        for step in range(1, pred.order + 1):
            position = pred.order - step
            slot = self._slot(base, position)
            fold = _fold_expr(
                f"(u64){chain.name}[{slot}]", self.layout.width_bits, params
            )
            mask = _hex64(params.order_mask(step))
            if step == 1:
                if (
                    self.facts is not None
                    and chain.name in self.facts.redundant_scratch_mask
                ):
                    # The fold is already narrower than the order-1 mask.
                    w.line(f"u64 {hash_var} = {fold};")
                else:
                    w.line(f"u64 {hash_var} = ({fold}) & {mask};")
            else:
                w.line(
                    f"{hash_var} = (({hash_var} << {params.shift}) ^ ({fold})) & {mask};"
                )
        w.line(f"register u64 {out} = {hash_var};")

    def emit_commit(self, w: CodeWriter, vars: dict, value: str) -> None:
        layout = self.layout
        f = self.f
        w.line(f"/* field {f}: update predictor tables */")
        stride_var = None
        if layout.needs_stride:
            stride_var = f"stride{f}"
            w.line(
                f"register u64 {stride_var} = "
                f"({value} - {vars['last_first']}) & {_hex64(layout.mask)};"
            )
        for pred in self.plan.predictors:
            if pred.l2 is None:
                continue
            update_value = value if pred.kind is PredictorKind.FCM else stride_var
            self._emit_line_update(
                w,
                pred.l2.name,
                vars["l2_bases"][pred.slot],
                self._table_depth(pred.l2.name, pred.depth),
                update_value,
                pred.l2.elem_bytes,
            )
        for chain in self.plan.chains:
            feed = value if chain.kind is PredictorKind.FCM else stride_var
            base = vars["chain_bases"][chain.name]
            if chain.fast:
                self._emit_chain_absorb(w, chain, base, feed)
            else:
                self._emit_history_shift(w, chain, base, feed)
        for last in self.plan.lasts:
            base = vars["lv_base"]
            if last is not self.plan.lasts[0]:
                base = self._base_expr(vars["line"], last.depth)
            self._emit_line_update(
                w,
                last.name,
                base,
                self._table_depth(last.name, last.depth),
                value,
                last.elem_bytes,
            )

    def _emit_line_update(
        self,
        w: CodeWriter,
        table: str,
        base: str | None,
        depth: int,
        value: str,
        elem_bytes: int,
    ) -> None:
        ctype = _CTYPES[elem_bytes]
        first = f"{table}[{self._slot(base, 0)}]"

        def emit_body() -> None:
            for slot in range(depth - 1, 0, -1):
                w.line(
                    f"{table}[{self._slot(base, slot)}] = "
                    f"{table}[{self._slot(base, slot - 1)}];"
                )
            w.line(f"{first} = ({ctype}){value};")

        if self._table_smart(table):
            w.line(f"if ({first} != ({ctype}){value}) {{")
            w.indent()
            emit_body()
            w.dedent()
            w.line("}")
        else:
            emit_body()

    def _emit_chain_absorb(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        params = chain.params
        ctype = _CTYPES[chain.elem_bytes]
        fold_var = f"fold_{chain.name}"
        w.line(
            f"register u64 {fold_var} = "
            f"{_fold_expr(feed, self.layout.width_bits, params)};"
        )
        temps = []
        for level in range(chain.span, 1, -1):
            temp = f"hash_{chain.name}_{level}"
            prev = f"(u64){chain.name}[{self._slot(base, level - 2)}]"
            w.line(
                f"register u64 {temp} = (({prev} << {params.shift}) ^ {fold_var}) "
                f"& {_hex64(params.order_mask(level))};"
            )
            temps.append((level, temp))
        for level, temp in temps:
            w.line(f"{chain.name}[{self._slot(base, level - 1)}] = ({ctype}){temp};")
        if self.facts is not None and chain.name in self.facts.redundant_chain_store_mask:
            # Range analysis: fold_bits <= k1, so the order-1 mask is identity.
            w.line(f"{chain.name}[{self._slot(base, 0)}] = ({ctype}){fold_var};")
        else:
            w.line(
                f"{chain.name}[{self._slot(base, 0)}] = "
                f"({ctype})({fold_var} & {_hex64(params.order_mask(1))});"
            )

    def _emit_history_shift(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        ctype = _CTYPES[chain.elem_bytes]
        for slot in range(chain.span - 1, 0, -1):
            w.line(
                f"{chain.name}[{self._slot(base, slot)}] = "
                f"{chain.name}[{self._slot(base, slot - 1)}];"
            )
        w.line(f"{chain.name}[{self._slot(base, 0)}] = ({ctype}){feed};")


def _emit_value_read(w: CodeWriter, target: str, source: str, pos: str, nbytes: int) -> None:
    """Byte-by-byte little-endian assembly (alignment-safe block I/O)."""
    parts = [f"(u64){source}[{pos}]"]
    for i in range(1, nbytes):
        parts.append(f"((u64){source}[{pos} + {i}] << {8 * i})")
    w.line(f"register u64 {target} = {' | '.join(parts)};")


def _emit_value_write(w: CodeWriter, buffer: str, value: str, nbytes: int) -> None:
    for i in range(nbytes):
        shifted = value if i == 0 else f"{value} >> {8 * i}"
        w.line(f"buffer_append_byte(&{buffer}, (u8)({shifted}));")


def _facts_by_field(model: CompressorModel, enabled: bool):
    """Per-field IR facts for elision, or None for the pre-IR output."""
    if not enabled:
        return None
    # Deferred import: repro.ir lowers through repro.codegen.plan.
    from repro.ir import analyze_model

    return analyze_model(model).fields


def generate_c(
    model: CompressorModel, codec: str = "bzip2", ir_facts: bool = True
) -> str:
    """Generate the source text of a specialized C compressor.

    ``ir_facts=False`` disables the IR-analysis-guided elisions and
    reproduces the pre-IR generator's output exactly; the differential
    tests compare compressed output across both settings.
    """
    codec_obj = codec_by_name(codec)
    if codec_obj.name == "lzma":
        raise CodegenError("the C backend supports bzip2, zlib, and identity codecs")
    facts = _facts_by_field(model, ir_facts)
    plans = [plan_field(layout, model.options) for layout in model.fields]
    plan_by_index = {plan.layout.index: plan for plan in plans}
    order = [plan_by_index[layout.index] for layout in model.process_order]
    spec = model.spec

    w = CodeWriter()
    w.line("/* Trace compressor generated by TCgen (C backend).")
    w.line(" *")
    w.line(" * Trace specification (canonical form):")
    comments = {
        layout.index: (
            f"field {layout.index}: {layout.total_predictions} predictions, "
            f"{layout.table_bytes(model.options.shared_tables)} table bytes"
        )
        for layout in model.fields
    }
    for line in format_spec(spec, comments).rstrip("\n").split("\n"):
        w.line(f" *   {line}")
    w.line(" */")
    w.line()
    w.line("#include <stdio.h>")
    w.line("#include <stdlib.h>")
    w.line("#include <string.h>")
    if codec_obj.name == "bzip2":
        w.line("#include <bzlib.h>")
    elif codec_obj.name == "zlib":
        w.line("#include <zlib.h>")
    w.line()
    w.line("typedef unsigned char u8;")
    w.line("typedef unsigned short u16;")
    w.line("typedef unsigned int u32;")
    w.line("typedef unsigned long long u64;")
    w.line()
    w.line(f"static const u64 fingerprint = {_hex64(spec.fingerprint())};")
    w.line(f"static const u32 codec_id = {codec_obj.codec_id};")
    w.line(f"static const u64 header_bytes = {spec.header_bytes};")
    w.line(f"static const u64 record_bytes = {spec.record_bytes};")
    w.line(f"static const u32 stream_count = {model.stream_count};")
    w.line()

    _emit_c_utilities(w, codec_obj.name)
    _emit_c_tables(w, plans)
    _emit_c_compress(w, model, plans, order, facts)
    _emit_c_decompress(w, model, plans, order, facts)
    _emit_c_main(w)
    return w.getvalue()


def _emit_c_utilities(w: CodeWriter, codec_name: str) -> None:
    w.line("/* ---- growable byte buffer ---- */")
    w.line()
    w.line("typedef struct {")
    w.indent()
    w.line("u8 *data;")
    w.line("size_t length;")
    w.line("size_t capacity;")
    w.dedent()
    w.line("} buffer;")
    w.line()
    with w.block("static void buffer_init(buffer *b) {"):
        w.line("b->capacity = 65536;")
        w.line("b->length = 0;")
        w.line("b->data = (u8 *)malloc(b->capacity);")
        w.line("if (b->data == NULL) {")
        w.indent()
        w.line('fprintf(stderr, "out of memory\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()
    with w.block("static void buffer_reserve(buffer *b, size_t extra) {"):
        w.line("if (b->length + extra <= b->capacity) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("while (b->length + extra > b->capacity) {")
        w.indent()
        w.line("b->capacity *= 2;")
        w.dedent()
        w.line("}")
        w.line("b->data = (u8 *)realloc(b->data, b->capacity);")
        w.line("if (b->data == NULL) {")
        w.indent()
        w.line('fprintf(stderr, "out of memory\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()
    with w.block("static void buffer_append_byte(buffer *b, u8 value) {"):
        w.line("buffer_reserve(b, 1);")
        w.line("b->data[b->length] = value;")
        w.line("b->length += 1;")
    w.line("}")
    w.line()
    with w.block("static void buffer_append(buffer *b, const u8 *src, size_t n) {"):
        w.line("buffer_reserve(b, n);")
        w.line("memcpy(b->data + b->length, src, n);")
        w.line("b->length += n;")
    w.line("}")
    w.line()
    with w.block("static void buffer_write_varint(buffer *b, u64 value) {"):
        w.line("for (;;) {")
        w.indent()
        w.line("u8 byte = (u8)(value & 0x7F);")
        w.line("value >>= 7;")
        w.line("if (value != 0) {")
        w.indent()
        w.line("buffer_append_byte(b, (u8)(byte | 0x80));")
        w.dedent()
        w.line("} else {")
        w.indent()
        w.line("buffer_append_byte(b, byte);")
        w.line("return;")
        w.dedent()
        w.line("}")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()
    with w.block("static u64 read_varint(const u8 *data, size_t length, size_t *pos) {"):
        w.line("u64 result = 0;")
        w.line("u32 shift = 0;")
        w.line("for (;;) {")
        w.indent()
        w.line("if (*pos >= length) {")
        w.indent()
        w.line('fprintf(stderr, "truncated varint\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
        w.line("u8 byte = data[*pos];")
        w.line("*pos += 1;")
        w.line("result |= (u64)(byte & 0x7F) << shift;")
        w.line("if ((byte & 0x80) == 0) {")
        w.indent()
        w.line("return result;")
        w.dedent()
        w.line("}")
        w.line("shift += 7;")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()
    w.line("/* ---- post-compression stage ---- */")
    w.line()
    if codec_name == "bzip2":
        with w.block("static u8 *post_compress(const u8 *src, size_t n, size_t *out_len) {"):
            w.line("unsigned int dest_len = (unsigned int)(n + n / 100 + 600);")
            w.line("u8 *dest = (u8 *)malloc(dest_len ? dest_len : 1);")
            w.line(
                "int rc = BZ2_bzBuffToBuffCompress((char *)dest, &dest_len, "
                "(char *)src, (unsigned int)n, 9, 0, 0);"
            )
            w.line("if (rc != BZ_OK) {")
            w.indent()
            w.line('fprintf(stderr, "bzip2 compression failed (%d)\\n", rc);')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("*out_len = dest_len;")
            w.line("return dest;")
        w.line("}")
        w.line()
        with w.block(
            "static u8 *post_decompress(const u8 *src, size_t n, size_t raw_len) {"
        ):
            w.line("unsigned int dest_len = (unsigned int)raw_len;")
            w.line("u8 *dest = (u8 *)malloc(raw_len ? raw_len : 1);")
            w.line(
                "int rc = BZ2_bzBuffToBuffDecompress((char *)dest, &dest_len, "
                "(char *)src, (unsigned int)n, 0, 0);"
            )
            w.line("if (rc != BZ_OK || dest_len != raw_len) {")
            w.indent()
            w.line('fprintf(stderr, "bzip2 decompression failed (%d)\\n", rc);')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("return dest;")
        w.line("}")
    elif codec_name == "zlib":
        with w.block("static u8 *post_compress(const u8 *src, size_t n, size_t *out_len) {"):
            w.line("uLongf dest_len = compressBound((uLong)n);")
            w.line("u8 *dest = (u8 *)malloc(dest_len ? dest_len : 1);")
            w.line("int rc = compress2(dest, &dest_len, src, (uLong)n, 9);")
            w.line("if (rc != Z_OK) {")
            w.indent()
            w.line('fprintf(stderr, "zlib compression failed (%d)\\n", rc);')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("*out_len = dest_len;")
            w.line("return dest;")
        w.line("}")
        w.line()
        with w.block(
            "static u8 *post_decompress(const u8 *src, size_t n, size_t raw_len) {"
        ):
            w.line("uLongf dest_len = (uLongf)raw_len;")
            w.line("u8 *dest = (u8 *)malloc(raw_len ? raw_len : 1);")
            w.line("int rc = uncompress(dest, &dest_len, src, (uLong)n);")
            w.line("if (rc != Z_OK || dest_len != raw_len) {")
            w.indent()
            w.line('fprintf(stderr, "zlib decompression failed (%d)\\n", rc);')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("return dest;")
        w.line("}")
    else:
        with w.block("static u8 *post_compress(const u8 *src, size_t n, size_t *out_len) {"):
            w.line("u8 *dest = (u8 *)malloc(n ? n : 1);")
            w.line("memcpy(dest, src, n);")
            w.line("*out_len = n;")
            w.line("return dest;")
        w.line("}")
        w.line()
        with w.block(
            "static u8 *post_decompress(const u8 *src, size_t n, size_t raw_len) {"
        ):
            w.line("if (n != raw_len) {")
            w.indent()
            w.line('fprintf(stderr, "identity stream length mismatch\\n");')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("u8 *dest = (u8 *)malloc(n ? n : 1);")
            w.line("memcpy(dest, src, n);")
            w.line("return dest;")
        w.line("}")
    w.line()
    w.line("/* ---- block I/O ---- */")
    w.line()
    with w.block("static u8 *read_entire_file(FILE *file, size_t *out_len) {"):
        w.line("size_t capacity = 1 << 20;")
        w.line("size_t length = 0;")
        w.line("u8 *data = (u8 *)malloc(capacity);")
        w.line("for (;;) {")
        w.indent()
        w.line("if (length == capacity) {")
        w.indent()
        w.line("capacity *= 2;")
        w.line("data = (u8 *)realloc(data, capacity);")
        w.dedent()
        w.line("}")
        w.line("size_t got = fread(data + length, 1, capacity - length, file);")
        w.line("if (got == 0) {")
        w.indent()
        w.line("break;")
        w.dedent()
        w.line("}")
        w.line("length += got;")
        w.dedent()
        w.line("}")
        w.line("*out_len = length;")
        w.line("return data;")
    w.line("}")
    w.line()


def _emit_c_tables(w: CodeWriter, plans: list[FieldPlan]) -> None:
    w.line("/* ---- predictor tables ---- */")
    w.line()
    allocations: list[tuple[str, str, int]] = []
    for plan in plans:
        for last in plan.lasts:
            ctype = _CTYPES[last.elem_bytes]
            w.line(f"static {ctype} *{last.name};")
            allocations.append((last.name, ctype, last.lines * last.depth))
        for chain in plan.chains:
            ctype = _CTYPES[chain.elem_bytes]
            w.line(f"static {ctype} *{chain.name};")
            allocations.append((chain.name, ctype, chain.lines * chain.span))
        for l2 in plan.l2s:
            ctype = _CTYPES[l2.elem_bytes]
            w.line(f"static {ctype} *{l2.name};")
            allocations.append((l2.name, ctype, l2.lines * l2.depth))
    for plan in plans:
        f = plan.layout.index
        w.line(f"static u64 usage{f}[{plan.layout.total_predictions + 1}];")
    w.line()
    with w.block("static void allocate_tables(void) {"):
        for name, ctype, count in allocations:
            w.line(f"{name} = ({ctype} *)calloc({count}, sizeof({ctype}));")
        names = " && ".join(name for name, _, _ in allocations)
        w.line(f"if (!({names})) {{")
        w.indent()
        w.line('fprintf(stderr, "table allocation failed\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()


def _emit_c_compress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    spec = model.spec
    pc_f = model.pc_field.index
    with w.block("static void compress_trace(const u8 *input, size_t input_length) {"):
        w.line("if ((input_length - header_bytes) % record_bytes != 0) {")
        w.indent()
        w.line('fprintf(stderr, "trace does not frame into records\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
        w.line("u64 record_count = (input_length - header_bytes) / record_bytes;")
        for plan in plans:
            f = plan.layout.index
            w.line(f"buffer codes{f};")
            w.line(f"buffer values{f};")
            w.line(f"buffer_init(&codes{f});")
            w.line(f"buffer_init(&values{f});")
        w.line("size_t pos = header_bytes;")
        w.line("u64 record;")
        with w.block("for (record = 0; record < record_count; record++) {"):
            offset = 0
            for plan in plans:
                layout = plan.layout
                _emit_value_read(
                    w, f"value{layout.index}", "input", f"pos + {offset}", layout.spec.bytes
                )
                offset += layout.spec.bytes
            w.line("pos += record_bytes;")
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _CFieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                w.line(f"/* field {f}: match the value against the predictions */")
                w.line(f"register u32 code{f};")
                for code, pvar in enumerate(vars["predictions"]):
                    keyword = "if" if code == 0 else "} else if"
                    w.line(f"{keyword} (value{f} == {pvar}) {{")
                    w.indent()
                    w.line(f"code{f} = {code};")
                    w.dedent()
                w.line("} else {")
                w.indent()
                w.line(f"code{f} = {layout.miss_code};")
                _emit_value_write(w, f"values{f}", f"value{f}", layout.value_bytes)
                w.dedent()
                w.line("}")
                if layout.code_bytes == 1:
                    w.line(f"buffer_append_byte(&codes{f}, (u8)code{f});")
                else:
                    _emit_value_write(w, f"codes{f}", f"(u64)code{f}", layout.code_bytes)
                w.line(f"usage{f}[code{f}] += 1;")
                emitter.emit_commit(w, vars, f"value{f}")
        w.line("}")
        w.line("/* assemble and emit the container */")
        w.line(f"buffer *streams[{model.stream_count}];")
        stream_index = 0
        if spec.header_bits:
            w.line("buffer header_stream;")
            w.line("buffer_init(&header_stream);")
            w.line("buffer_append(&header_stream, input, header_bytes);")
            w.line(f"streams[{stream_index}] = &header_stream;")
            stream_index += 1
        for plan in plans:
            f = plan.layout.index
            w.line(f"streams[{stream_index}] = &codes{f};")
            w.line(f"streams[{stream_index + 1}] = &values{f};")
            stream_index += 2
        w.line("buffer out;")
        w.line("buffer_init(&out);")
        w.line('buffer_append(&out, (const u8 *)"TCGN", 4);')
        w.line("buffer_append_byte(&out, 1);")
        w.line("u32 i;")
        with w.block("for (i = 0; i < 8; i++) {"):
            w.line("buffer_append_byte(&out, (u8)(fingerprint >> (8 * i)));")
        w.line("}")
        w.line("buffer_write_varint(&out, record_count);")
        w.line("buffer_write_varint(&out, stream_count);")
        w.line(f"u8 *payloads[{model.stream_count}];")
        w.line(f"size_t payload_lengths[{model.stream_count}];")
        with w.block("for (i = 0; i < stream_count; i++) {"):
            w.line(
                "payloads[i] = post_compress(streams[i]->data, streams[i]->length, "
                "&payload_lengths[i]);"
            )
            w.line("buffer_append_byte(&out, (u8)codec_id);")
            w.line("buffer_write_varint(&out, streams[i]->length);")
            w.line("buffer_write_varint(&out, payload_lengths[i]);")
        w.line("}")
        with w.block("for (i = 0; i < stream_count; i++) {"):
            w.line("buffer_append(&out, payloads[i], payload_lengths[i]);")
        w.line("}")
        w.line("fwrite(out.data, 1, out.length, stdout);")
        w.line("/* predictor usage feedback (paper Section 4) */")
        w.line('fprintf(stderr, "predictor usage:\\n");')
        for plan in plans:
            f = plan.layout.index
            total = plan.layout.total_predictions
            with w.block(f"for (i = 0; i <= {total}; i++) {{"):
                w.line(
                    f'fprintf(stderr, "  field {f} code %u: %llu\\n", i, usage{f}[i]);'
                )
            w.line("}")
    w.line("}")
    w.line()


def _emit_c_decompress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    spec = model.spec
    pc_f = model.pc_field.index
    with w.block("static void decompress_trace(const u8 *input, size_t input_length) {"):
        w.line('if (input_length < 13 || memcmp(input, "TCGN", 4) != 0 || input[4] != 1) {')
        w.indent()
        w.line('fprintf(stderr, "not a TCgen container\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
        w.line("u64 blob_fingerprint = 0;")
        w.line("u32 i;")
        with w.block("for (i = 0; i < 8; i++) {"):
            w.line("blob_fingerprint |= (u64)input[5 + i] << (8 * i);")
        w.line("}")
        w.line("if (blob_fingerprint != fingerprint) {")
        w.indent()
        w.line('fprintf(stderr, "compressed trace does not match this specification\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
        w.line("size_t pos = 13;")
        w.line("u64 record_count = read_varint(input, input_length, &pos);")
        w.line("u64 blob_streams = read_varint(input, input_length, &pos);")
        w.line("if (blob_streams != stream_count) {")
        w.indent()
        w.line('fprintf(stderr, "unexpected stream count\\n");')
        w.line("exit(1);")
        w.dedent()
        w.line("}")
        w.line(f"u64 raw_lengths[{model.stream_count}];")
        w.line(f"u64 stored_lengths[{model.stream_count}];")
        with w.block("for (i = 0; i < stream_count; i++) {"):
            w.line("if (pos >= input_length || input[pos] != codec_id) {")
            w.indent()
            w.line('fprintf(stderr, "unexpected stream codec\\n");')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line("pos += 1;")
            w.line("raw_lengths[i] = read_varint(input, input_length, &pos);")
            w.line("stored_lengths[i] = read_varint(input, input_length, &pos);")
        w.line("}")
        w.line(f"u8 *streams[{model.stream_count}];")
        with w.block("for (i = 0; i < stream_count; i++) {"):
            w.line("if (pos + (size_t)stored_lengths[i] > input_length) {")
            w.indent()
            w.line('fprintf(stderr, "truncated stream payload\\n");')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            w.line(
                "streams[i] = post_decompress(input + pos, (size_t)stored_lengths[i], "
                "(size_t)raw_lengths[i]);"
            )
            w.line("pos += (size_t)stored_lengths[i];")
        w.line("}")
        stream_index = 0
        if spec.header_bits:
            w.line(f"const u8 *header_stream = streams[{stream_index}];")
            stream_index += 1
        for plan in plans:
            f = plan.layout.index
            cb = plan.layout.code_bytes
            w.line(f"const u8 *codes{f} = streams[{stream_index}];")
            w.line(f"const u8 *values{f} = streams[{stream_index + 1}];")
            w.line(f"size_t vpos{f} = 0;")
            w.line(f"size_t vlen{f} = (size_t)raw_lengths[{stream_index + 1}];")
            w.line(f"if (raw_lengths[{stream_index}] != record_count * {cb}) {{")
            w.indent()
            w.line(f'fprintf(stderr, "field {f} code stream length mismatch\\n");')
            w.line("exit(1);")
            w.dedent()
            w.line("}")
            stream_index += 2
        w.line("buffer out;")
        w.line("buffer_init(&out);")
        if spec.header_bits:
            w.line("buffer_append(&out, header_stream, header_bytes);")
        w.line("u64 record;")
        with w.block("for (record = 0; record < record_count; record++) {"):
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _CFieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                cb = layout.code_bytes
                if cb == 1:
                    w.line(f"register u32 code{f} = codes{f}[record];")
                else:
                    parts = [f"(u32)codes{f}[record * {cb}]"]
                    for i in range(1, cb):
                        parts.append(f"((u32)codes{f}[record * {cb} + {i}] << {8 * i})")
                    w.line(f"register u32 code{f} = {' | '.join(parts)};")
                w.line(f"register u64 value{f};")
                for code, pvar in enumerate(vars["predictions"]):
                    keyword = "if" if code == 0 else "} else if"
                    w.line(f"{keyword} (code{f} == {code}) {{")
                    w.indent()
                    w.line(f"value{f} = {pvar};")
                    w.dedent()
                w.line(f"}} else if (code{f} == {layout.miss_code}) {{")
                w.indent()
                vb = layout.value_bytes
                w.line(f"if (vpos{f} + {vb} > vlen{f}) {{")
                w.indent()
                w.line(f'fprintf(stderr, "field {f} value stream exhausted\\n");')
                w.line("exit(1);")
                w.dedent()
                w.line("}")
                parts = [f"(u64)values{f}[vpos{f}]"]
                for i in range(1, vb):
                    parts.append(f"((u64)values{f}[vpos{f} + {i}] << {8 * i})")
                w.line(f"value{f} = ({' | '.join(parts)}) & {_hex64(layout.mask)};")
                w.line(f"vpos{f} += {vb};")
                w.dedent()
                w.line("} else {")
                w.indent()
                w.line(f'fprintf(stderr, "field {f}: invalid code\\n");')
                w.line("exit(1);")
                w.dedent()
                w.line("}")
                emitter.emit_commit(w, vars, f"value{f}")
            for plan in plans:
                layout = plan.layout
                _emit_value_write(w, "out", f"value{layout.index}", layout.spec.bytes)
        w.line("}")
        w.line("fwrite(out.data, 1, out.length, stdout);")
    w.line("}")
    w.line()


def generate_c_library(model: CompressorModel, ir_facts: bool = True) -> str:
    """Generate C source for the in-process shared-library fast path.

    Unlike :func:`generate_c` (a standalone stdin/stdout filter owning the
    whole container format), the library exposes only the *kernel stage* —
    record bytes in, serialized code/value streams out — through a small
    stable ABI (see docs/NATIVE.md):

    - ``tcgen_abi_version`` / ``tcgen_fingerprint`` / ``tcgen_record_bytes``
      / ``tcgen_header_bytes`` / ``tcgen_stream_count``: identity probes;
    - ``tcgen_compress(trace, len, &out, &out_len)``: whole-trace kernel
      pass (skips the header bytes itself) producing a stream bundle;
    - ``tcgen_chunk_compress``: same, but over a headerless record slice —
      what the v2/v3 chunk pipeline feeds per chunk;
    - ``tcgen_decompress`` / ``tcgen_chunk_decompress``: bundle in,
      reconstructed record bytes out;
    - ``tcgen_free``: releases any ``out`` pointer the library returned.

    Post-compression codecs, container framing, CRCs, and salvage all stay
    in Python, which is what makes the native path byte-identical to the
    pure-Python backends by construction.  Every entry point is reentrant:
    predictor tables are per-call heap locals, so concurrent calls from a
    thread pool (ctypes releases the GIL) never share state.  Entry points
    return 0 on success, 1 on framing errors, 2 on allocation failure, and
    3 on a corrupt code/value stream.
    """
    plans = [plan_field(layout, model.options) for layout in model.fields]
    plan_by_index = {plan.layout.index: plan for plan in plans}
    order = [plan_by_index[layout.index] for layout in model.process_order]
    spec = model.spec

    w = CodeWriter()
    w.line("/* Trace-compressor kernel library generated by TCgen (C backend).")
    w.line(" *")
    w.line(" * Trace specification (canonical form):")
    for line in format_spec(spec).rstrip("\n").split("\n"):
        w.line(f" *   {line}")
    w.line(" */")
    w.line()
    w.line("#include <stdlib.h>")
    w.line("#include <string.h>")
    w.line()
    w.line("typedef unsigned char u8;")
    w.line("typedef unsigned short u16;")
    w.line("typedef unsigned int u32;")
    w.line("typedef unsigned long long u64;")
    w.line()
    w.line("static const u32 abi_version = 2;")
    w.line(f"static const u64 fingerprint = {_hex64(spec.fingerprint())};")
    w.line(f"static const u64 header_bytes = {spec.header_bytes};")
    w.line(f"static const u64 record_bytes = {spec.record_bytes};")
    w.line(f"static const u32 stream_count = {model.stream_count};")
    w.line()
    _emit_lib_utilities(w)
    facts = _facts_by_field(model, ir_facts)
    _emit_lib_compress(w, model, plans, order, facts)
    _emit_lib_decompress(w, model, plans, order, facts)
    _emit_lib_exports(w)
    return w.getvalue()


def _emit_lib_utilities(w: CodeWriter) -> None:
    w.line("/* ---- growable byte buffer (failure-tolerant: never exits) ---- */")
    w.line()
    w.line("typedef struct {")
    w.indent()
    w.line("u8 *data;")
    w.line("size_t length;")
    w.line("size_t capacity;")
    w.line("int failed;")
    w.dedent()
    w.line("} buffer;")
    w.line()
    with w.block("static void buffer_init(buffer *b) {"):
        w.line("b->data = NULL;")
        w.line("b->length = 0;")
        w.line("b->capacity = 0;")
        w.line("b->failed = 0;")
    w.line("}")
    w.line()
    with w.block("static void buffer_reserve(buffer *b, size_t extra) {"):
        w.line("size_t capacity;")
        w.line("u8 *grown;")
        w.line("if (b->failed) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("if (b->length + extra <= b->capacity) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("capacity = b->capacity ? b->capacity : 65536;")
        w.line("while (b->length + extra > capacity) {")
        w.indent()
        w.line("capacity *= 2;")
        w.dedent()
        w.line("}")
        w.line("grown = (u8 *)realloc(b->data, capacity);")
        w.line("if (grown == NULL) {")
        w.indent()
        w.line("b->failed = 1;")
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("b->data = grown;")
        w.line("b->capacity = capacity;")
    w.line("}")
    w.line()
    with w.block("static void buffer_append_byte(buffer *b, u8 value) {"):
        w.line("buffer_reserve(b, 1);")
        w.line("if (b->failed) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("b->data[b->length] = value;")
        w.line("b->length += 1;")
    w.line("}")
    w.line()
    with w.block("static void buffer_append(buffer *b, const u8 *src, size_t n) {"):
        w.line("if (n == 0) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("buffer_reserve(b, n);")
        w.line("if (b->failed) {")
        w.indent()
        w.line("return;")
        w.dedent()
        w.line("}")
        w.line("memcpy(b->data + b->length, src, n);")
        w.line("b->length += n;")
    w.line("}")
    w.line()
    with w.block("static void buffer_write_varint(buffer *b, u64 value) {"):
        w.line("for (;;) {")
        w.indent()
        w.line("u8 byte = (u8)(value & 0x7F);")
        w.line("value >>= 7;")
        w.line("if (value != 0) {")
        w.indent()
        w.line("buffer_append_byte(b, (u8)(byte | 0x80));")
        w.dedent()
        w.line("} else {")
        w.indent()
        w.line("buffer_append_byte(b, byte);")
        w.line("return;")
        w.dedent()
        w.line("}")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()
    with w.block(
        "static int read_varint_checked(const u8 *data, size_t length, "
        "size_t *pos, u64 *out) {"
    ):
        w.line("u64 result = 0;")
        w.line("u32 shift = 0;")
        w.line("for (;;) {")
        w.indent()
        w.line("u8 byte;")
        w.line("if (*pos >= length || shift > 63) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("byte = data[*pos];")
        w.line("*pos += 1;")
        w.line("result |= (u64)(byte & 0x7F) << shift;")
        w.line("if ((byte & 0x80) == 0) {")
        w.indent()
        w.line("*out = result;")
        w.line("return 0;")
        w.dedent()
        w.line("}")
        w.line("shift += 7;")
        w.dedent()
        w.line("}")
    w.line("}")
    w.line()


def _lib_allocations(plans: list[FieldPlan]) -> list[tuple[str, str, int]]:
    """The (name, ctype, element_count) table set both kernels allocate."""
    allocations: list[tuple[str, str, int]] = []
    for plan in plans:
        for last in plan.lasts:
            allocations.append(
                (last.name, _CTYPES[last.elem_bytes], last.lines * last.depth)
            )
        for chain in plan.chains:
            allocations.append(
                (chain.name, _CTYPES[chain.elem_bytes], chain.lines * chain.span)
            )
        for l2 in plan.l2s:
            allocations.append(
                (l2.name, _CTYPES[l2.elem_bytes], l2.lines * l2.depth)
            )
    return allocations


def _emit_lib_table_locals(w: CodeWriter, allocations: list[tuple[str, str, int]]) -> None:
    """Per-call heap tables: declared NULL so the cleanup path is uniform."""
    for name, ctype, _ in allocations:
        w.line(f"{ctype} *{name} = NULL;")


def _emit_lib_table_alloc(w: CodeWriter, allocations: list[tuple[str, str, int]]) -> None:
    for name, ctype, count in allocations:
        w.line(f"{name} = ({ctype} *)calloc({count}, sizeof({ctype}));")
    names = " && ".join(name for name, _, _ in allocations)
    w.line(f"if (!({names})) {{")
    w.indent()
    w.line("status = 2;")
    w.line("goto done;")
    w.dedent()
    w.line("}")


def _emit_lib_table_free(w: CodeWriter, allocations: list[tuple[str, str, int]]) -> None:
    for name, _, _ in allocations:
        w.line(f"free({name});")


def _emit_lib_compress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    pc_f = model.pc_field.index
    allocations = _lib_allocations(plans)
    w.line("/* ---- kernel: records -> serialized stream bundle ---- */")
    w.line()
    with w.block(
        "static int kernel_compress(const u8 *records, u64 record_count, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("size_t pos = 0;")
        w.line("u64 record;")
        w.line("u32 i;")
        w.line("int status = 0;")
        w.line("buffer bundle;")
        _emit_lib_table_locals(w, allocations)
        for plan in plans:
            f = plan.layout.index
            w.line(f"buffer codes{f};")
            w.line(f"buffer values{f};")
            w.line(f"u64 usage{f}[{plan.layout.total_predictions + 1}];")
        w.line("buffer_init(&bundle);")
        for plan in plans:
            f = plan.layout.index
            w.line(f"buffer_init(&codes{f});")
            w.line(f"buffer_init(&values{f});")
            w.line(f"memset(usage{f}, 0, sizeof(usage{f}));")
        _emit_lib_table_alloc(w, allocations)
        with w.block("for (record = 0; record < record_count; record++) {"):
            offset = 0
            for plan in plans:
                layout = plan.layout
                _emit_value_read(
                    w, f"value{layout.index}", "records", f"pos + {offset}", layout.spec.bytes
                )
                offset += layout.spec.bytes
            w.line("pos += record_bytes;")
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _CFieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                w.line(f"/* field {f}: match the value against the predictions */")
                w.line(f"register u32 code{f};")
                for code, pvar in enumerate(vars["predictions"]):
                    keyword = "if" if code == 0 else "} else if"
                    w.line(f"{keyword} (value{f} == {pvar}) {{")
                    w.indent()
                    w.line(f"code{f} = {code};")
                    w.dedent()
                w.line("} else {")
                w.indent()
                w.line(f"code{f} = {layout.miss_code};")
                _emit_value_write(w, f"values{f}", f"value{f}", layout.value_bytes)
                w.dedent()
                w.line("}")
                if layout.code_bytes == 1:
                    w.line(f"buffer_append_byte(&codes{f}, (u8)code{f});")
                else:
                    _emit_value_write(w, f"codes{f}", f"(u64)code{f}", layout.code_bytes)
                w.line(f"usage{f}[code{f}] += 1;")
                emitter.emit_commit(w, vars, f"value{f}")
        w.line("}")
        failed = " || ".join(
            f"codes{plan.layout.index}.failed || values{plan.layout.index}.failed"
            for plan in plans
        )
        w.line(f"if ({failed}) {{")
        w.indent()
        w.line("status = 2;")
        w.line("goto done;")
        w.dedent()
        w.line("}")
        w.line("/* bundle: count, per-field stream lengths, streams, usage */")
        w.line("buffer_write_varint(&bundle, record_count);")
        for plan in plans:
            f = plan.layout.index
            w.line(f"buffer_write_varint(&bundle, (u64)codes{f}.length);")
            w.line(f"buffer_write_varint(&bundle, (u64)values{f}.length);")
        for plan in plans:
            f = plan.layout.index
            w.line(f"buffer_append(&bundle, codes{f}.data, codes{f}.length);")
            w.line(f"buffer_append(&bundle, values{f}.data, values{f}.length);")
        for plan in plans:
            f = plan.layout.index
            total = plan.layout.total_predictions
            with w.block(f"for (i = 0; i <= {total}; i++) {{"):
                w.line(f"buffer_write_varint(&bundle, usage{f}[i]);")
            w.line("}")
        w.line("if (bundle.failed) {")
        w.indent()
        w.line("status = 2;")
        w.line("goto done;")
        w.dedent()
        w.line("}")
        w.line("*out = bundle.data;")
        w.line("*out_length = bundle.length;")
        w.line("bundle.data = NULL;")
        w.line("done:")
        _emit_lib_table_free(w, allocations)
        for plan in plans:
            f = plan.layout.index
            w.line(f"free(codes{f}.data);")
            w.line(f"free(values{f}.data);")
        w.line("free(bundle.data);")
        w.line("return status;")
    w.line("}")
    w.line()


def _emit_lib_decompress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    pc_f = model.pc_field.index
    allocations = _lib_allocations(plans)
    w.line("/* ---- kernel: stream bundle -> reconstructed record bytes ---- */")
    w.line()
    with w.block(
        "static int kernel_decompress(const u8 *bundle, size_t bundle_length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("size_t pos = 0;")
        w.line("u64 record_count = 0;")
        w.line("u64 record;")
        w.line("int status = 0;")
        w.line("u8 *output = NULL;")
        w.line("size_t outpos = 0;")
        w.line("size_t total_bytes = 0;")
        for plan in plans:
            f = plan.layout.index
            w.line(f"u64 clen{f} = 0;")
            w.line(f"u64 vlen{f} = 0;")
            w.line(f"const u8 *codes{f} = NULL;")
            w.line(f"const u8 *values{f} = NULL;")
            w.line(f"size_t vpos{f} = 0;")
        _emit_lib_table_locals(w, allocations)
        w.line("if (read_varint_checked(bundle, bundle_length, &pos, &record_count) != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (record_count > ((u64)1 << 48)) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        for plan in plans:
            f = plan.layout.index
            cb = plan.layout.code_bytes
            for var in (f"clen{f}", f"vlen{f}"):
                w.line(
                    f"if (read_varint_checked(bundle, bundle_length, &pos, &{var}) != 0) {{"
                )
                w.indent()
                w.line("return 1;")
                w.dedent()
                w.line("}")
            w.line(f"if (clen{f} != record_count * {cb}) {{")
            w.indent()
            w.line("return 1;")
            w.dedent()
            w.line("}")
        for plan in plans:
            f = plan.layout.index
            for var, ptr in ((f"clen{f}", f"codes{f}"), (f"vlen{f}", f"values{f}")):
                w.line(f"if ({var} > (u64)(bundle_length - pos)) {{")
                w.indent()
                w.line("return 1;")
                w.dedent()
                w.line("}")
                w.line(f"{ptr} = bundle + pos;")
                w.line(f"pos += (size_t){var};")
        w.line("if (pos != bundle_length) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("total_bytes = (size_t)(record_count * record_bytes);")
        w.line("output = (u8 *)malloc(total_bytes ? total_bytes : 1);")
        w.line("if (output == NULL) {")
        w.indent()
        w.line("return 2;")
        w.dedent()
        w.line("}")
        _emit_lib_table_alloc(w, allocations)
        with w.block("for (record = 0; record < record_count; record++) {"):
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _CFieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                cb = layout.code_bytes
                if cb == 1:
                    w.line(f"register u32 code{f} = codes{f}[record];")
                else:
                    parts = [f"(u32)codes{f}[record * {cb}]"]
                    for i in range(1, cb):
                        parts.append(f"((u32)codes{f}[record * {cb} + {i}] << {8 * i})")
                    w.line(f"register u32 code{f} = {' | '.join(parts)};")
                w.line(f"register u64 value{f};")
                for code, pvar in enumerate(vars["predictions"]):
                    keyword = "if" if code == 0 else "} else if"
                    w.line(f"{keyword} (code{f} == {code}) {{")
                    w.indent()
                    w.line(f"value{f} = {pvar};")
                    w.dedent()
                w.line(f"}} else if (code{f} == {layout.miss_code}) {{")
                w.indent()
                vb = layout.value_bytes
                w.line(f"if (vpos{f} + {vb} > (size_t)vlen{f}) {{")
                w.indent()
                w.line("status = 3;")
                w.line("goto done;")
                w.dedent()
                w.line("}")
                parts = [f"(u64)values{f}[vpos{f}]"]
                for i in range(1, vb):
                    parts.append(f"((u64)values{f}[vpos{f} + {i}] << {8 * i})")
                w.line(f"value{f} = ({' | '.join(parts)}) & {_hex64(layout.mask)};")
                w.line(f"vpos{f} += {vb};")
                w.dedent()
                w.line("} else {")
                w.indent()
                w.line("status = 3;")
                w.line("goto done;")
                w.dedent()
                w.line("}")
                emitter.emit_commit(w, vars, f"value{f}")
            position = 0
            for plan in plans:
                layout = plan.layout
                for i in range(layout.spec.bytes):
                    shifted = (
                        f"value{layout.index}"
                        if i == 0
                        else f"value{layout.index} >> {8 * i}"
                    )
                    w.line(f"output[outpos + {position + i}] = (u8)({shifted});")
                position += layout.spec.bytes
            w.line("outpos += record_bytes;")
        w.line("}")
        for plan in plans:
            f = plan.layout.index
            w.line(f"if (vpos{f} != (size_t)vlen{f}) {{")
            w.indent()
            w.line("status = 1;")
            w.line("goto done;")
            w.dedent()
            w.line("}")
        w.line("*out = output;")
        w.line("*out_length = total_bytes;")
        w.line("output = NULL;")
        w.line("done:")
        _emit_lib_table_free(w, allocations)
        w.line("free(output);")
        w.line("return status;")
    w.line("}")
    w.line()


def _emit_lib_exports(w: CodeWriter) -> None:
    w.line("/* ---- exported ABI (see docs/NATIVE.md) ---- */")
    w.line()
    with w.block("u32 tcgen_abi_version(void) {"):
        w.line("return abi_version;")
    w.line("}")
    w.line()
    with w.block("u64 tcgen_fingerprint(void) {"):
        w.line("return fingerprint;")
    w.line("}")
    w.line()
    with w.block("u64 tcgen_record_bytes(void) {"):
        w.line("return record_bytes;")
    w.line("}")
    w.line()
    with w.block("u64 tcgen_header_bytes(void) {"):
        w.line("return header_bytes;")
    w.line("}")
    w.line()
    with w.block("u32 tcgen_stream_count(void) {"):
        w.line("return stream_count;")
    w.line("}")
    w.line()
    with w.block("void tcgen_free(u8 *ptr) {"):
        w.line("free(ptr);")
    w.line("}")
    w.line()
    with w.block(
        "int tcgen_chunk_compress(const u8 *records, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("if (out == NULL || out_length == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("*out = NULL;")
        w.line("*out_length = 0;")
        w.line("if (records == NULL && length != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (length % record_bytes != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("return kernel_compress(records, (u64)(length / record_bytes), out, out_length);")
    w.line("}")
    w.line()
    with w.block(
        "int tcgen_compress(const u8 *trace, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("if (out == NULL || out_length == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("*out = NULL;")
        w.line("*out_length = 0;")
        w.line("if (trace == NULL && length != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (length < header_bytes) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if ((length - header_bytes) % record_bytes != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line(
            "return kernel_compress(trace + header_bytes, "
            "(u64)((length - header_bytes) / record_bytes), out, out_length);"
        )
    w.line("}")
    w.line()
    with w.block(
        "int tcgen_chunk_decompress(const u8 *bundle, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("if (out == NULL || out_length == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("*out = NULL;")
        w.line("*out_length = 0;")
        w.line("if (bundle == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("return kernel_decompress(bundle, length, out, out_length);")
    w.line("}")
    w.line()
    with w.block(
        "int tcgen_decompress(const u8 *bundle, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("return tcgen_chunk_decompress(bundle, length, out, out_length);")
    w.line("}")
    w.line()
    w.line("/* Batched entry points (ABI 2): N chunks per call, one GIL")
    w.line(" * release and one FFI crossing for the whole batch.  Input and")
    w.line(" * output share the frame: varint chunk_count, then per chunk a")
    w.line(" * varint byte length (record_count for compress input) followed")
    w.line(" * by that chunk's payload. */")
    w.line()
    with w.block(
        "int tcgen_batch_compress(const u8 *batch, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("size_t pos = 0;")
        w.line("u64 chunk_count;")
        w.line("u64 i;")
        w.line("buffer acc;")
        w.line("if (out == NULL || out_length == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("*out = NULL;")
        w.line("*out_length = 0;")
        w.line("if (batch == NULL && length != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (read_varint_checked(batch, length, &pos, &chunk_count)) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("buffer_init(&acc);")
        w.line("buffer_write_varint(&acc, chunk_count);")
        w.line("for (i = 0; i < chunk_count; i++) {")
        w.indent()
        w.line("u64 record_count;")
        w.line("u8 *piece = NULL;")
        w.line("size_t piece_length = 0;")
        w.line("int status;")
        w.line("if (read_varint_checked(batch, length, &pos, &record_count)) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (record_count > (u64)((length - pos) / record_bytes)) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("status = kernel_compress(batch + pos, record_count, &piece, &piece_length);")
        w.line("if (status != 0) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return status;")
        w.dedent()
        w.line("}")
        w.line("pos += (size_t)(record_count * record_bytes);")
        w.line("buffer_write_varint(&acc, (u64)piece_length);")
        w.line("buffer_append(&acc, piece, piece_length);")
        w.line("free(piece);")
        w.dedent()
        w.line("}")
        w.line("if (pos != length || acc.failed) {")
        w.indent()
        w.line("int failed = acc.failed;")
        w.line("free(acc.data);")
        w.line("return failed ? 2 : 1;")
        w.dedent()
        w.line("}")
        w.line("*out = acc.data;")
        w.line("*out_length = acc.length;")
        w.line("return 0;")
    w.line("}")
    w.line()
    with w.block(
        "int tcgen_batch_decompress(const u8 *batch, size_t length, "
        "u8 **out, size_t *out_length) {"
    ):
        w.line("size_t pos = 0;")
        w.line("u64 chunk_count;")
        w.line("u64 i;")
        w.line("buffer acc;")
        w.line("if (out == NULL || out_length == NULL) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("*out = NULL;")
        w.line("*out_length = 0;")
        w.line("if (batch == NULL && length != 0) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (read_varint_checked(batch, length, &pos, &chunk_count)) {")
        w.indent()
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("buffer_init(&acc);")
        w.line("buffer_write_varint(&acc, chunk_count);")
        w.line("for (i = 0; i < chunk_count; i++) {")
        w.indent()
        w.line("u64 bundle_length;")
        w.line("u8 *piece = NULL;")
        w.line("size_t piece_length = 0;")
        w.line("int status;")
        w.line("if (read_varint_checked(batch, length, &pos, &bundle_length)) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("if (bundle_length > (u64)(length - pos)) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return 1;")
        w.dedent()
        w.line("}")
        w.line("status = kernel_decompress(batch + pos, (size_t)bundle_length, &piece, &piece_length);")
        w.line("if (status != 0) {")
        w.indent()
        w.line("free(acc.data);")
        w.line("return status;")
        w.dedent()
        w.line("}")
        w.line("pos += (size_t)bundle_length;")
        w.line("buffer_write_varint(&acc, (u64)piece_length);")
        w.line("buffer_append(&acc, piece, piece_length);")
        w.line("free(piece);")
        w.dedent()
        w.line("}")
        w.line("if (pos != length || acc.failed) {")
        w.indent()
        w.line("int failed = acc.failed;")
        w.line("free(acc.data);")
        w.line("return failed ? 2 : 1;")
        w.dedent()
        w.line("}")
        w.line("*out = acc.data;")
        w.line("*out_length = acc.length;")
        w.line("return 0;")
    w.line("}")


def _emit_c_main(w: CodeWriter) -> None:
    from repro import __version__ as generator_version

    with w.block("int main(int argc, char *argv[]) {"):
        w.line("int decompress_mode = 0;")
        w.line("int i;")
        with w.block("for (i = 1; i < argc; i++) {"):
            w.line('if (strcmp(argv[i], "--version") == 0) {')
            w.indent()
            w.line(f'printf("tcgen-generated {generator_version}\\n");')
            w.line("return 0;")
            w.dedent()
            w.line("}")
            w.line('if (strcmp(argv[i], "-d") == 0) {')
            w.indent()
            w.line("decompress_mode = 1;")
            w.dedent()
            w.line("}")
        w.line("}")
        w.line("allocate_tables();")
        w.line("size_t input_length;")
        w.line("u8 *input = read_entire_file(stdin, &input_length);")
        w.line("if (decompress_mode) {")
        w.indent()
        w.line("decompress_trace(input, input_length);")
        w.dedent()
        w.line("} else {")
        w.indent()
        w.line("compress_trace(input, input_length);")
        w.dedent()
        w.line("}")
        w.line("free(input);")
        w.line("return 0;")
    w.line("}")
