"""The in-process native fast path: compiled C kernels behind ``ctypes``.

The paper's central claim is that *generated, compiled* code beats a
generic interpreter by orders of magnitude.  This module closes that loop
for the library itself: the C backend's kernel-stage ABI
(:func:`repro.codegen.c_backend.generate_c_library`) is compiled with
``cc -O3 -shared -fPIC``, loaded into the current process with
``ctypes``, and exposed as a :class:`NativeKernel` whose
``compress_chunk``/``decompress_chunk`` calls are drop-in replacements
for the pure-Python chunk workers in :mod:`repro.runtime.engine` — same
inputs, same outputs, byte for byte.  Codecs, container framing, CRCs,
and salvage stay in Python, which is what makes the equivalence hold by
construction.

Compiled artifacts are cached on disk (default ``~/.cache/tcgen/``,
honouring ``XDG_CACHE_HOME`` and the ``TCGEN_CACHE_DIR`` override) keyed
by canonical-spec hash + optimization options + generator version + ABI
version + compiler fingerprint, so a spec is compiled once per machine,
not once per process.  Every artifact carries a sideband JSON record
with its SHA-256; a truncated or tampered ``.so`` is detected, deleted,
and rebuilt instead of crashing the loader.  Concurrent builders
serialize on an ``flock`` file lock and publish via atomic rename, so a
double build yields one usable artifact.  The cache is pruned LRU (by
``.so`` mtime, refreshed on load) to ``TCGEN_CACHE_MAX_BYTES``.

``TCGEN_NATIVE=0`` disables the whole subsystem; every failure mode
raises :class:`~repro.errors.NativeBackendError` with the reason, which
``backend="auto"`` dispatch turns into a logged Python fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import subprocess
import tempfile
import threading

from repro import __version__ as _generator_version
from repro.codegen.c_backend import generate_c_library
from repro.codegen.compile import find_c_compiler
from repro.errors import (
    CodegenError,
    CompressedFormatError,
    NativeBackendError,
    TraceFormatError,
)
from repro.model.layout import CompressorModel

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Version of the C ABI this loader speaks; bumped with the emitter.
#: ABI 2 added the batched entry points (``tcgen_batch_compress`` /
#: ``tcgen_batch_decompress``): N chunks per FFI crossing.
ABI_VERSION = 2

#: Default size cap for the on-disk artifact cache (LRU-pruned).
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Per-entry files: the shared library, its source, and the metadata.
_ARTIFACT_SUFFIXES = (".so", ".c", ".json")

_kernels: dict[tuple[str, str], "NativeKernel"] = {}
_kernels_lock = threading.Lock()
_compiler_fingerprints: dict[str, str] = {}


def native_enabled() -> bool:
    """False when the ``TCGEN_NATIVE=0`` escape hatch is set."""
    return os.environ.get("TCGEN_NATIVE", "1") != "0"


def cache_dir() -> str:
    """The artifact cache directory (created lazily by the builder)."""
    override = os.environ.get("TCGEN_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "tcgen")


def cache_max_bytes() -> int:
    raw = os.environ.get("TCGEN_CACHE_MAX_BYTES")
    if raw is None:
        return DEFAULT_CACHE_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_CACHE_MAX_BYTES


def compiler_fingerprint(compiler: str) -> str:
    """A stable identity for the compiler binary (path + version banner).

    Artifacts built by one compiler must not be served to another — the
    key changes whenever the toolchain does.
    """
    cached = _compiler_fingerprints.get(compiler)
    if cached is not None:
        return cached
    try:
        probe = subprocess.run(
            [compiler, "--version"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=30,
        )
        banner = probe.stdout.decode(errors="replace").splitlines()
        identity = banner[0] if banner else ""
    except (OSError, subprocess.TimeoutExpired):
        try:
            identity = f"mtime:{os.path.getmtime(compiler)}"
        except OSError:
            identity = "unknown"
    fingerprint = hashlib.sha256(f"{compiler}\n{identity}".encode()).hexdigest()[:16]
    _compiler_fingerprints[compiler] = fingerprint
    return fingerprint


def artifact_key(model: CompressorModel, compiler: str) -> str:
    """Cache key: canonical spec + options + versions + compiler."""
    from repro.spec.canonical import format_spec

    options = model.options
    material = "\n".join(
        [
            format_spec(model.spec),
            repr(options),
            f"generator={_generator_version}",
            f"abi={ABI_VERSION}",
            f"compiler={compiler_fingerprint(compiler)}",
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class CacheLock:
    """An ``flock``-based inter-process lock guarding cache mutation.

    Shared with the server's disk-backed engine cache
    (:mod:`repro.server.enginecache`), which publishes into a sibling of
    this cache directory under the same locking discipline.
    """

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, ".lock")
        self.handle = None

    def __enter__(self) -> "CacheLock":
        if fcntl is not None:
            self.handle = open(self.path, "a+")
            fcntl.flock(self.handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        if self.handle is not None:
            fcntl.flock(self.handle.fileno(), fcntl.LOCK_UN)
            self.handle.close()
            self.handle = None


def _artifact_paths(directory: str, key: str) -> tuple[str, str, str]:
    return tuple(os.path.join(directory, key + s) for s in _ARTIFACT_SUFFIXES)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _artifact_valid(so_path: str, meta_path: str) -> bool:
    """True when the cached ``.so`` matches its integrity sideband."""
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    if meta.get("abi") != ABI_VERSION:
        return False
    expected = meta.get("sha256")
    if not isinstance(expected, str):
        return False
    try:
        return _sha256_file(so_path) == expected
    except OSError:
        return False


def _remove_artifact(directory: str, key: str) -> None:
    for path in _artifact_paths(directory, key):
        try:
            os.remove(path)
        except OSError:
            pass


def prune_cache(directory: str, max_bytes: int, keep: str | None = None) -> list[str]:
    """Evict least-recently-used artifacts until the cache fits the cap.

    Recency is the ``.so`` mtime, which :func:`load_native_kernel` touches
    on every cache hit.  ``keep`` names the key that must survive (the one
    just built).  Returns the evicted keys (for tests and logging).  The
    caller holds the cache lock.
    """
    entries = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        if not name.endswith(".so"):
            continue
        key = name[: -len(".so")]
        so_path = os.path.join(directory, name)
        try:
            stat = os.stat(so_path)
        except OSError:
            continue
        size = stat.st_size
        for suffix in (".c", ".json"):
            try:
                size += os.path.getsize(os.path.join(directory, key + suffix))
            except OSError:
                pass
        entries.append((stat.st_mtime, key, size))
    entries.sort()
    total = sum(size for _, _, size in entries)
    evicted = []
    for _, key, size in entries:
        if total <= max_bytes:
            break
        if key == keep:
            continue
        _remove_artifact(directory, key)
        total -= size
        evicted.append(key)
    return evicted


def build_artifact(
    model: CompressorModel, compiler: str, key: str | None = None
) -> str:
    """Compile the kernel library for ``model`` into the cache; returns the
    ``.so`` path.

    The compile happens outside the lock in a private temp dir; only the
    publish (atomic renames into the cache) and the LRU prune are
    serialized.  If another process published the same key meanwhile, its
    artifact wins and our build is discarded.
    """
    directory = cache_dir()
    os.makedirs(directory, exist_ok=True)
    key = key or artifact_key(model, compiler)
    so_path, c_path, meta_path = _artifact_paths(directory, key)

    # Verify the emitted source against the codegen invariants (table
    # sizing, dead code, ABI completeness) before ever handing it to the
    # compiler — a planner bug must not ship as a cached .so.
    source = generate_c_library(model)
    try:
        from repro.lint.genverify import assert_verified

        assert_verified(model, source, backend="c-library")
    except CodegenError as exc:
        raise NativeBackendError(str(exc)) from exc
    workdir = tempfile.mkdtemp(prefix="tcgen_native_", dir=directory)
    try:
        tmp_c = os.path.join(workdir, "tcgen.c")
        tmp_so = os.path.join(workdir, "tcgen.so")
        with open(tmp_c, "w") as handle:
            handle.write(source)
        command = [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_so, tmp_c]
        try:
            result = subprocess.run(
                command, stdout=subprocess.PIPE, stderr=subprocess.PIPE
            )
        except OSError as exc:
            raise NativeBackendError(f"cannot run compiler {compiler!r}: {exc}") from exc
        if result.returncode != 0:
            stderr = result.stderr.decode(errors="replace")[:2000]
            raise NativeBackendError(
                f"native build failed (compiler exited {result.returncode}):\n{stderr}"
            )
        if not os.path.exists(tmp_so):
            raise NativeBackendError(
                "native build produced no shared library (compiler crashed?)"
            )
        meta = {
            "abi": ABI_VERSION,
            "generator_version": _generator_version,
            "compiler": compiler,
            "compiler_fingerprint": compiler_fingerprint(compiler),
            "sha256": _sha256_file(tmp_so),
            "fingerprint": f"{model.fingerprint():016x}",
        }
        tmp_meta = os.path.join(workdir, "tcgen.json")
        with open(tmp_meta, "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        with CacheLock(directory):
            if not (os.path.exists(so_path) and _artifact_valid(so_path, meta_path)):
                os.replace(tmp_c, c_path)
                os.replace(tmp_so, so_path)
                os.replace(tmp_meta, meta_path)  # meta last: publishes the entry
            prune_cache(directory, cache_max_bytes(), keep=key)
    finally:
        for leftover in ("tcgen.c", "tcgen.so", "tcgen.json"):
            try:
                os.remove(os.path.join(workdir, leftover))
            except OSError:
                pass
        try:
            os.rmdir(workdir)
        except OSError:
            pass
    return so_path


# -- varint plumbing for the bundle wire format ------------------------------


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CompressedFormatError("native bundle: truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class NativeKernel:
    """A loaded shared-library kernel for one (spec, options) model.

    Thread-safe: the generated entry points keep all state in per-call
    heap locals, and ctypes releases the GIL for the duration of each
    call — which is exactly what makes ``workers=N`` profitable for the
    native kernel stage (threads, no pickling).
    """

    def __init__(self, lib: ctypes.CDLL, model: CompressorModel, path: str) -> None:
        self._lib = lib
        self.path = path
        self.record_bytes = model.spec.record_bytes
        self.header_bytes = model.spec.header_bytes
        self.fingerprint = model.fingerprint()
        self._fields = [
            (layout.code_bytes, layout.value_bytes, layout.total_predictions)
            for layout in model.fields
        ]

        out_t = ctypes.POINTER(ctypes.c_ubyte)
        for name in (
            "tcgen_compress",
            "tcgen_chunk_compress",
            "tcgen_decompress",
            "tcgen_chunk_decompress",
            "tcgen_batch_compress",
            "tcgen_batch_decompress",
        ):
            fn = getattr(lib, name)
            fn.argtypes = [
                ctypes.c_char_p,
                ctypes.c_size_t,
                ctypes.POINTER(out_t),
                ctypes.POINTER(ctypes.c_size_t),
            ]
            fn.restype = ctypes.c_int
        lib.tcgen_free.argtypes = [out_t]
        lib.tcgen_free.restype = None

    def _call(self, fn, data: bytes) -> bytes:
        out = ctypes.POINTER(ctypes.c_ubyte)()
        out_length = ctypes.c_size_t(0)
        status = fn(data, len(data), ctypes.byref(out), ctypes.byref(out_length))
        if status == 0:
            try:
                return ctypes.string_at(out, out_length.value)
            finally:
                self._lib.tcgen_free(out)
        if status == 2:
            raise MemoryError("native kernel: allocation failed")
        raise _StatusError(status)

    # -- compression ---------------------------------------------------------

    def compress_chunk(self, records: bytes) -> tuple[list[bytes], list[list[int]]]:
        """Kernel-compress one headerless record slice.

        Returns exactly what the Python ``_compress_chunk`` worker returns:
        interleaved per-field (codes, values) streams plus usage counts.
        """
        try:
            bundle = self._call(self._lib.tcgen_chunk_compress, records)
        except _StatusError as exc:
            raise TraceFormatError(
                f"native kernel rejected the record slice (status {exc.status})"
            ) from None
        return self._parse_bundle(bundle, len(records) // self.record_bytes)

    def compress_trace(self, raw: bytes) -> tuple[list[bytes], list[list[int]]]:
        """Kernel-compress a whole trace (the library skips the header)."""
        try:
            bundle = self._call(self._lib.tcgen_compress, raw)
        except _StatusError as exc:
            raise TraceFormatError(
                f"native kernel rejected the trace (status {exc.status})"
            ) from None
        count = (len(raw) - self.header_bytes) // self.record_bytes
        return self._parse_bundle(bundle, count)

    def compress_batch(
        self, slices: list[bytes]
    ) -> list[tuple[list[bytes], list[list[int]]]]:
        """Kernel-compress N record slices in one FFI crossing.

        Equivalent to ``[compress_chunk(s) for s in slices]`` — the
        chunks still run with fresh per-chunk state inside the library —
        but pays the ctypes call overhead and GIL release once per batch
        instead of once per chunk.
        """
        payload = bytearray()
        _write_varint(payload, len(slices))
        counts = []
        for records in slices:
            if len(records) % self.record_bytes:
                raise TraceFormatError(
                    f"record slice of {len(records)} bytes does not frame "
                    f"into {self.record_bytes}-byte records"
                )
            count = len(records) // self.record_bytes
            counts.append(count)
            _write_varint(payload, count)
            payload += records
        try:
            blob = self._call(self._lib.tcgen_batch_compress, bytes(payload))
        except _StatusError as exc:
            raise TraceFormatError(
                f"native kernel rejected the record batch (status {exc.status})"
            ) from None
        returned, pos = _read_varint(blob, 0)
        if returned != len(slices):
            raise CompressedFormatError(
                f"native batch returned {returned} chunks, expected {len(slices)}"
            )
        results = []
        for count in counts:
            piece_length, pos = _read_varint(blob, pos)
            results.append(self._parse_bundle(blob[pos : pos + piece_length], count))
            pos += piece_length
        return results

    def _parse_bundle(
        self, bundle: bytes, expected_count: int
    ) -> tuple[list[bytes], list[list[int]]]:
        count, pos = _read_varint(bundle, 0)
        if count != expected_count:
            raise CompressedFormatError(
                f"native bundle claims {count} records, expected {expected_count}"
            )
        lengths = []
        for _ in self._fields:
            clen, pos = _read_varint(bundle, pos)
            vlen, pos = _read_varint(bundle, pos)
            lengths.append((clen, vlen))
        streams: list[bytes] = []
        for clen, vlen in lengths:
            streams.append(bundle[pos : pos + clen])
            pos += clen
            streams.append(bundle[pos : pos + vlen])
            pos += vlen
        if pos > len(bundle):
            raise CompressedFormatError("native bundle: streams overrun the payload")
        usage: list[list[int]] = []
        for _, _, total_predictions in self._fields:
            counts = []
            for _ in range(total_predictions + 1):
                value, pos = _read_varint(bundle, pos)
                counts.append(value)
            usage.append(counts)
        return streams, usage

    # -- decompression -------------------------------------------------------

    def decompress_chunk(
        self, count: int, codes: list[bytes], values: list[bytes]
    ) -> bytes:
        """Decode one chunk back to raw record bytes (no header)."""
        bundle = bytearray()
        _write_varint(bundle, count)
        for code_stream, value_stream in zip(codes, values):
            _write_varint(bundle, len(code_stream))
            _write_varint(bundle, len(value_stream))
        for code_stream, value_stream in zip(codes, values):
            bundle += code_stream
            bundle += value_stream
        try:
            out = self._call(self._lib.tcgen_chunk_decompress, bytes(bundle))
        except _StatusError as exc:
            if exc.status == 3:
                raise CompressedFormatError(
                    "native kernel: value stream exhausted or code out of range"
                ) from None
            raise CompressedFormatError(
                f"native kernel rejected the stream bundle (status {exc.status})"
            ) from None
        if len(out) != count * self.record_bytes:
            raise CompressedFormatError(
                f"native kernel returned {len(out)} bytes for {count} records"
            )
        return out

    def decompress_batch(
        self, items: list[tuple[int, list[bytes], list[bytes]]]
    ) -> list[bytes]:
        """Decode N chunks in one FFI crossing.

        ``items`` are ``(record_count, codes, values)`` triples exactly as
        :meth:`decompress_chunk` takes them; returns the per-chunk record
        bytes in order.
        """
        payload = bytearray()
        _write_varint(payload, len(items))
        for count, codes, values in items:
            bundle = bytearray()
            _write_varint(bundle, count)
            for code_stream, value_stream in zip(codes, values):
                _write_varint(bundle, len(code_stream))
                _write_varint(bundle, len(value_stream))
            for code_stream, value_stream in zip(codes, values):
                bundle += code_stream
                bundle += value_stream
            _write_varint(payload, len(bundle))
            payload += bundle
        try:
            blob = self._call(self._lib.tcgen_batch_decompress, bytes(payload))
        except _StatusError as exc:
            if exc.status == 3:
                raise CompressedFormatError(
                    "native kernel: value stream exhausted or code out of range"
                ) from None
            raise CompressedFormatError(
                f"native kernel rejected the batch bundle (status {exc.status})"
            ) from None
        returned, pos = _read_varint(blob, 0)
        if returned != len(items):
            raise CompressedFormatError(
                f"native batch returned {returned} chunks, expected {len(items)}"
            )
        pieces = []
        for count, _, _ in items:
            piece_length, pos = _read_varint(blob, pos)
            piece = blob[pos : pos + piece_length]
            pos += piece_length
            if len(piece) != count * self.record_bytes:
                raise CompressedFormatError(
                    f"native kernel returned {len(piece)} bytes for {count} records"
                )
            pieces.append(piece)
        return pieces


class _StatusError(Exception):
    """Internal: a non-zero status from a native entry point."""

    def __init__(self, status: int) -> None:
        super().__init__(status)
        self.status = status


def _load_library(so_path: str, model: CompressorModel) -> NativeKernel:
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        raise NativeBackendError(f"cannot load {so_path}: {exc}") from exc
    try:
        abi = lib.tcgen_abi_version()
    except AttributeError as exc:
        raise NativeBackendError(f"{so_path} lacks the tcgen ABI: {exc}") from exc
    if abi != ABI_VERSION:
        raise NativeBackendError(
            f"{so_path} speaks ABI {abi}, this loader wants {ABI_VERSION}"
        )
    lib.tcgen_fingerprint.restype = ctypes.c_uint64
    lib.tcgen_record_bytes.restype = ctypes.c_uint64
    fingerprint = int(lib.tcgen_fingerprint())
    if fingerprint != model.fingerprint():
        raise NativeBackendError(
            f"{so_path} was generated for fingerprint {fingerprint:#x}, "
            f"model has {model.fingerprint():#x}"
        )
    return NativeKernel(lib, model, so_path)


def load_native_kernel(
    model: CompressorModel, compiler: str | None = None
) -> NativeKernel:
    """Build/load/cache the native kernel for ``model``.

    Raises :class:`~repro.errors.NativeBackendError` with the reason when
    the fast path is unavailable (disabled, no compiler, build failure,
    unloadable artifact).  Successful loads are memoized per process.
    """
    if not native_enabled():
        raise NativeBackendError("native backend disabled via TCGEN_NATIVE=0")
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise NativeBackendError("no C compiler found (tried cc, gcc, clang)")
    key = artifact_key(model, compiler)
    directory = cache_dir()
    memo_key = (directory, key)
    with _kernels_lock:
        kernel = _kernels.get(memo_key)
    if kernel is not None:
        return kernel

    so_path, _, meta_path = _artifact_paths(directory, key)
    kernel = None
    if os.path.exists(so_path) and _artifact_valid(so_path, meta_path):
        try:
            kernel = _load_library(so_path, model)
            os.utime(so_path)  # refresh LRU recency
        except NativeBackendError:
            kernel = None  # fall through to a rebuild
    if kernel is None:
        # Whatever is cached under this key (nothing, a truncated .so, a
        # tampered sideband, an unloadable library) is unusable: drop it
        # and rebuild from source.
        os.makedirs(directory, exist_ok=True)
        with CacheLock(directory):
            _remove_artifact(directory, key)
        build_artifact(model, compiler, key=key)
        kernel = _load_library(so_path, model)

    with _kernels_lock:
        _kernels[memo_key] = kernel
    return kernel


def clear_native_cache() -> None:
    """Forget loaded kernels and compiler fingerprints (for tests).

    Does not touch the on-disk artifact cache — delete files under
    :func:`cache_dir` for that.
    """
    with _kernels_lock:
        _kernels.clear()
    _compiler_fingerprints.clear()
