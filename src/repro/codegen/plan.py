"""Structure planning for code generation.

Turns a field layout plus optimization options into the concrete list of
state structures the generated code will declare — which last-value tables
exist, which hash chains serve which predictors, and which second-level
tables belong to whom.  With table sharing on, lower-order predictors ride
on the field's single chain; with sharing off, every predictor owns private
replicas.  Both backends (and the tests that cross-check memory accounting)
consume this plan, so the sharing logic lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.model.layout import FieldLayout
from repro.model.optimize import OptimizationOptions
from repro.predictors.hashing import HashParams
from repro.spec.ast import PredictorKind


@dataclass
class LastValueStruct:
    """A last-value table: ``lines x depth`` most-recent values."""

    name: str
    lines: int
    depth: int
    elem_bytes: int
    smart_updatable: bool = True  # depth-1 private DFCM copies skip the shift


@dataclass
class ChainStruct:
    """A first-level hash structure (partial hashes or raw history)."""

    name: str
    kind: PredictorKind  # FCM or DFCM — what it is fed with
    params: HashParams
    lines: int
    fast: bool
    orders_served: tuple[int, ...]
    elem_bytes: int  # partial-hash width (fast) or value width (slow)

    @property
    def span(self) -> int:
        """Slots per line: partial hashes (or history) up to the max order."""
        return max(self.orders_served)


@dataclass
class L2Struct:
    """A second-level (hash-indexed) table owned by one predictor."""

    name: str
    lines: int
    depth: int
    elem_bytes: int


@dataclass
class PlannedPredictor:
    """One predictor with references into the structure plan."""

    slot: int
    kind: PredictorKind
    order: int
    depth: int
    first_code: int
    last: LastValueStruct | None = None
    chain: ChainStruct | None = None
    l2: L2Struct | None = None


@dataclass
class FieldPlan:
    """Everything the generators need to emit one field's logic."""

    layout: FieldLayout
    predictors: list[PlannedPredictor]
    lasts: list[LastValueStruct] = dc_field(default_factory=list)
    chains: list[ChainStruct] = dc_field(default_factory=list)
    l2s: list[L2Struct] = dc_field(default_factory=list)

    @property
    def prefix(self) -> str:
        return f"field{self.layout.index}"

    def table_bytes(self) -> int:
        """Footprint of every structure in the plan."""
        total = 0
        for last in self.lasts:
            total += last.lines * last.depth * last.elem_bytes
        for chain in self.chains:
            total += chain.lines * chain.span * chain.elem_bytes
        for l2 in self.l2s:
            total += l2.lines * l2.depth * l2.elem_bytes
        return total


def plan_field(layout: FieldLayout, options: OptimizationOptions) -> FieldPlan:
    """Build the structure plan for one field."""
    prefix = f"field{layout.index}"
    predictors = [
        PlannedPredictor(
            slot=slot,
            kind=res.spec.kind,
            order=res.spec.order,
            depth=res.spec.depth,
            first_code=res.first_code,
        )
        for slot, res in enumerate(layout.predictors)
    ]
    plan = FieldPlan(layout=layout, predictors=predictors)

    if options.shared_tables:
        shared_last = None
        if layout.lv_depth:
            shared_last = LastValueStruct(
                name=f"{prefix}_lastvalue",
                lines=layout.l1_lines,
                depth=layout.lv_depth,
                elem_bytes=layout.elem_bytes,
            )
            plan.lasts.append(shared_last)
        shared_fcm = None
        if layout.fcm_params is not None:
            orders = tuple(
                sorted({p.order for p in predictors if p.kind is PredictorKind.FCM})
            )
            shared_fcm = ChainStruct(
                name=f"{prefix}_fcm_chain",
                kind=PredictorKind.FCM,
                params=layout.fcm_params,
                lines=layout.l1_lines,
                fast=options.fast_hash,
                orders_served=orders,
                elem_bytes=layout.fcm_chain_bytes
                if options.fast_hash
                else layout.elem_bytes,
            )
            plan.chains.append(shared_fcm)
        shared_dfcm = None
        if layout.dfcm_params is not None:
            orders = tuple(
                sorted({p.order for p in predictors if p.kind is PredictorKind.DFCM})
            )
            shared_dfcm = ChainStruct(
                name=f"{prefix}_dfcm_chain",
                kind=PredictorKind.DFCM,
                params=layout.dfcm_params,
                lines=layout.l1_lines,
                fast=options.fast_hash,
                orders_served=orders,
                elem_bytes=layout.dfcm_chain_bytes
                if options.fast_hash
                else layout.elem_bytes,
            )
            plan.chains.append(shared_dfcm)
        used_names: set[str] = set()
        for pred, res in zip(predictors, layout.predictors):
            if pred.kind is PredictorKind.LV:
                pred.last = shared_last
            else:
                pred.chain = shared_fcm if pred.kind is PredictorKind.FCM else shared_dfcm
                name = f"{prefix}_{res.name.lower()}_l2"
                if name in used_names:
                    # Duplicate predictor selections (e.g. DFCM1[2] twice)
                    # still get distinct tables, as the engine keeps them.
                    name = f"{prefix}_p{pred.slot}_{res.name.lower()}_l2"
                used_names.add(name)
                pred.l2 = L2Struct(
                    name=name,
                    lines=res.l2_lines,
                    depth=pred.depth,
                    elem_bytes=layout.elem_bytes,
                )
                plan.l2s.append(pred.l2)
                if pred.kind is PredictorKind.DFCM:
                    pred.last = shared_last
        return plan

    # Unshared: private structures per predictor.  Hash parameters still
    # come from the field's shared derivation so the hash values (and hence
    # the compression rate) are identical — only duplication is added.
    for pred, res in zip(predictors, layout.predictors):
        tag = f"{prefix}_p{pred.slot}_{res.name.lower()}"
        if pred.kind is PredictorKind.LV:
            pred.last = LastValueStruct(
                name=f"{tag}_values",
                lines=layout.l1_lines,
                depth=pred.depth,
                elem_bytes=layout.elem_bytes,
            )
            plan.lasts.append(pred.last)
            continue
        params = (
            layout.fcm_params if pred.kind is PredictorKind.FCM else layout.dfcm_params
        )
        pred.chain = ChainStruct(
            name=f"{tag}_chain",
            kind=pred.kind,
            params=params,
            lines=layout.l1_lines,
            fast=options.fast_hash,
            orders_served=(pred.order,),
            elem_bytes=(
                layout.fcm_chain_bytes
                if pred.kind is PredictorKind.FCM
                else layout.dfcm_chain_bytes
            )
            if options.fast_hash
            else layout.elem_bytes,
        )
        plan.chains.append(pred.chain)
        pred.l2 = L2Struct(
            name=f"{tag}_l2",
            lines=res.l2_lines,
            depth=pred.depth,
            elem_bytes=layout.elem_bytes,
        )
        plan.l2s.append(pred.l2)
        if pred.kind is PredictorKind.DFCM:
            pred.last = LastValueStruct(
                name=f"{tag}_last",
                lines=layout.l1_lines,
                depth=1,
                elem_bytes=layout.elem_bytes,
            )
            plan.lasts.append(pred.last)
    return plan
