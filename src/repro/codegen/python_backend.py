"""Python code generation backend.

Emits a complete, self-contained Python module implementing the compressor
described by a :class:`~repro.model.CompressorModel`.  The module depends
only on the standard library (``array``, ``struct``, and the chosen
post-compression codec) and exposes::

    compress(raw: bytes) -> bytes
    decompress(blob: bytes) -> bytes
    usage_report() -> str        # predictor feedback after a compression
    main(argv)                   # stdin -> stdout filter, '-d' decompresses

The emitted code is specialized exactly the way the paper describes for C:
prediction and update loops are fully unrolled, constants (masks, shifts,
table bases) are inlined, power-of-two modulo operations become bit-ands,
dead code for unused features is never emitted, and all names are
meaningful.  Containers produced by the generated module are byte-identical
to the interpreted :class:`~repro.runtime.TraceEngine` — for the flat v1
format and for the chunked v3 format alike (``compress(raw,
chunk_records=...)``), with ``workers=`` parallelizing the post-compression
stage on a thread pool.  The generated decoder reads v1, v2, and v3
containers, verifies the v3 CRC32C framing, bounds every decompression by
the declared stream length, and offers ``decompress(..., salvage=True)``
to skip damaged v3 chunks instead of raising.  All corruption is signalled
with :class:`ValueError` (the generated module depends only on the
standard library, so it cannot share this package's exception types).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.codegen.plan import ChainStruct, FieldPlan, plan_field
from repro.codegen.writer import CodeWriter
from repro.model.layout import CompressorModel
from repro.postcompress import codec_by_name
from repro.predictors.hashing import HashParams
from repro.spec.ast import PredictorKind
from repro.spec.canonical import format_spec
from repro.tio.container import default_chunk_records

_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}

_STRUCT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _fold_expr(var: str, width_bits: int, params: HashParams) -> str:
    """Expression folding ``var`` into ``params.fold_bits`` bits."""
    fb = params.fold_bits
    if width_bits <= fb:
        return var
    parts = [var]
    shift = fb
    while shift < width_bits:
        parts.append(f"({var} >> {shift})")
        shift += fb
    return f"({' ^ '.join(parts)}) & {hex((1 << fb) - 1)}"


@dataclass
class _FieldVars:
    """Names of the per-record locals emitted for one field."""

    value: str
    line: str | None  # None when L1 = 1 (constant line 0)
    lv_base: str | None
    last_first: str | None  # local holding the pre-update last value
    chain_bases: dict[str, str]  # chain name -> base variable (or constant)
    index_vars: dict[int, str]  # predictor slot -> L2 index variable
    l2_bases: dict[int, str]  # predictor slot -> L2 base expression
    predictions: list[str]  # one variable per identification code


class _FieldEmitter:
    """Emits the begin/commit logic for one field into a CodeWriter.

    ``facts`` is the field's :class:`repro.ir.analysis.FieldFacts` (or
    None to reproduce the pre-IR output exactly, which the differential
    tests pin).  With facts, masks and guards the range/liveness
    analyses prove redundant are elided.
    """

    def __init__(self, plan: FieldPlan, policy_smart: bool, facts=None) -> None:
        self.plan = plan
        self.layout = plan.layout
        self.smart = policy_smart
        self.facts = facts
        self.f = self.layout.index

    def _table_smart(self, table: str) -> bool:
        """Smart-update guard, unless liveness proved it useless."""
        if not self.smart:
            return False
        return self.facts is None or table not in self.facts.plain_store

    def _table_depth(self, table: str, depth: int) -> int:
        """Rotation depth clipped to the live prefix."""
        if self.facts is None:
            return depth
        return min(depth, self.facts.live_depth.get(table, depth))

    # -- small expression helpers -----------------------------------------

    def _base_expr(self, line_var: str | None, span: int) -> str | None:
        """Base of the selected line in a flat ``lines x span`` table."""
        if line_var is None:
            return None  # line 0: offsets are absolute
        if span == 1:
            return line_var
        return f"{line_var} * {span}"

    def _slot(self, base: str | None, offset: int) -> str:
        if base is None:
            return str(offset)
        if offset == 0:
            return base
        return f"{base} + {offset}"

    # -- begin phase -------------------------------------------------------

    def emit_begin(self, w: CodeWriter, pc_var: str) -> _FieldVars:
        """Emit index computation and prediction loads; return the vars."""
        layout = self.layout
        f = self.f
        w.line(f"# field {f}: compute table indices and predictions")
        line_var = None
        if layout.l1_lines > 1:
            line_var = f"line{f}"
            if self.facts is not None and self.facts.elide_line_mask:
                # Range analysis proved pc < l1_lines: the mask is identity.
                w.line(f"{line_var} = {pc_var}")
            else:
                w.line(f"{line_var} = {pc_var} & {layout.l1_lines - 1}")

        vars = _FieldVars(
            value=f"value{f}",
            line=line_var,
            lv_base=None,
            last_first=None,
            chain_bases={},
            index_vars={},
            l2_bases={},
            predictions=[],
        )

        # Last-value base and the most recent value (shared or private).
        lasts = self.plan.lasts
        if lasts:
            first = lasts[0]
            base = self._base_expr(line_var, first.depth)
            if base is not None and first.depth > 1:
                vars.lv_base = f"lvbase{f}"
                w.line(f"{vars.lv_base} = {base}")
            elif base is not None:
                vars.lv_base = base
            if layout.needs_stride:
                vars.last_first = f"last{f}"
                w.line(
                    f"{vars.last_first} = {first.name}[{self._slot(vars.lv_base, 0)}]"
                )

        # Chain bases and per-predictor L2 indices.
        for chain in self.plan.chains:
            base = self._base_expr(line_var, chain.span)
            if base is not None and ("*" in base or chain.span > 1):
                name = f"{chain.name}_base"
                w.line(f"{name} = {base}")
                vars.chain_bases[chain.name] = name
            else:
                vars.chain_bases[chain.name] = base  # may be None
        for pred in self.plan.predictors:
            if pred.chain is None:
                continue
            index_var = f"index{f}_{pred.slot}"
            vars.index_vars[pred.slot] = index_var
            base = vars.chain_bases[pred.chain.name]
            if pred.chain.fast:
                w.line(f"{index_var} = {pred.chain.name}[{self._slot(base, pred.order - 1)}]")
            else:
                self._emit_scratch_hash(w, pred, base, index_var)

        # Prediction variables, one per identification code.
        code = 0
        for pred in self.plan.predictors:
            if pred.kind is PredictorKind.LV:
                lv = pred.last
                base = vars.lv_base
                # Private LV tables have their own depth; recompute the base.
                if lv is not lasts[0]:
                    base = self._base_expr(line_var, lv.depth)
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(f"{pvar} = {lv.name}[{self._slot(base, slot)}]")
                    vars.predictions.append(pvar)
                    code += 1
                continue
            l2_base = f"l2base{f}_{pred.slot}"
            index_var = vars.index_vars[pred.slot]
            if pred.depth > 1:
                w.line(f"{l2_base} = {index_var} * {pred.depth}")
            else:
                l2_base = index_var
            vars.l2_bases[pred.slot] = l2_base
            if pred.kind is PredictorKind.FCM:
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(f"{pvar} = {pred.l2.name}[{self._slot(l2_base, slot)}]")
                    vars.predictions.append(pvar)
                    code += 1
            else:  # DFCM: last + stride, masked to the field width
                last_var = vars.last_first
                if last_var is None:
                    raise AssertionError("DFCM without a last value")
                # Unshared DFCMs read their private copy (identical content).
                if pred.last is not lasts[0]:
                    private = self._base_expr(line_var, 1)
                    last_var = f"last{f}_{pred.slot}"
                    w.line(f"{last_var} = {pred.last.name}[{self._slot(private, 0)}]")
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(
                        f"{pvar} = ({last_var} + "
                        f"{pred.l2.name}[{self._slot(l2_base, slot)}]) & {hex(layout.mask)}"
                    )
                    vars.predictions.append(pvar)
                    code += 1
        return vars

    def _emit_scratch_hash(self, w: CodeWriter, pred, base: str | None, out: str) -> None:
        """Unrolled from-scratch hash over the raw history (slow-hash mode)."""
        chain = pred.chain
        params = chain.params
        w.line(f"# order-{pred.order} hash of {chain.name} computed from scratch")
        hash_var = f"scratch{self.f}_{pred.slot}"
        for step in range(1, pred.order + 1):
            position = pred.order - step
            slot = self._slot(base, position)
            fold = _fold_expr(f"{chain.name}[{slot}]", self.layout.width_bits, params)
            mask = hex(params.order_mask(step))
            if step == 1:
                if (
                    self.facts is not None
                    and chain.name in self.facts.redundant_scratch_mask
                ):
                    # The fold is already narrower than the order-1 mask.
                    w.line(f"{hash_var} = {fold}")
                else:
                    w.line(f"{hash_var} = ({fold}) & {mask}")
            else:
                w.line(f"{hash_var} = (({hash_var} << {params.shift}) ^ ({fold})) & {mask}")
        w.line(f"{out} = {hash_var}")

    # -- commit phase --------------------------------------------------------

    def emit_commit(self, w: CodeWriter, vars: _FieldVars) -> None:
        """Emit all table updates for the true value ``vars.value``."""
        layout = self.layout
        f = self.f
        value = vars.value
        w.line(f"# field {f}: update predictor tables")
        stride_var = None
        if layout.needs_stride:
            stride_var = f"stride{f}"
            w.line(f"{stride_var} = ({value} - {vars.last_first}) & {hex(layout.mask)}")

        # Second-level tables, in predictor order (mirrors the kernel).
        for pred in self.plan.predictors:
            if pred.l2 is None:
                continue
            update_value = value if pred.kind is PredictorKind.FCM else stride_var
            self._emit_line_update(
                w,
                table=pred.l2.name,
                base=vars.l2_bases[pred.slot],
                depth=self._table_depth(pred.l2.name, pred.depth),
                value=update_value,
                smart=self._table_smart(pred.l2.name),
            )

        # First-level chains (order across distinct structures is free).
        for chain in self.plan.chains:
            feed = value if chain.kind is PredictorKind.FCM else stride_var
            base = vars.chain_bases[chain.name]
            if chain.fast:
                self._emit_chain_absorb(w, chain, base, feed)
            else:
                self._emit_history_shift(w, chain, base, feed)

        # Last-value tables.
        for last in self.plan.lasts:
            base = vars.lv_base
            if last is not self.plan.lasts[0] or last.depth != self.plan.lasts[0].depth:
                base = self._base_expr(
                    vars.line, last.depth
                )  # private tables have their own geometry
            self._emit_line_update(
                w,
                table=last.name,
                base=base,
                depth=self._table_depth(last.name, last.depth),
                value=value,
                smart=self._table_smart(last.name),
            )

    def _emit_line_update(
        self, w: CodeWriter, table: str, base: str | None, depth: int, value: str, smart: bool
    ) -> None:
        first = f"{table}[{self._slot(base, 0)}]"
        body = CodeWriter()
        for slot in range(depth - 1, 0, -1):
            w_slot = f"{table}[{self._slot(base, slot)}]"
            r_slot = f"{table}[{self._slot(base, slot - 1)}]"
            body.line(f"{w_slot} = {r_slot}")
        body.line(f"{first} = {value}")
        if smart:
            with w.block(f"if {first} != {value}:"):
                for line in body.getvalue().rstrip("\n").split("\n"):
                    w.line(line)
        else:
            for line in body.getvalue().rstrip("\n").split("\n"):
                w.line(line)

    def _emit_chain_absorb(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        params = chain.params
        f = self.f
        fold_var = f"fold_{chain.name}"
        w.line(f"{fold_var} = {_fold_expr(feed, self.layout.width_bits, params)}")
        span = chain.span
        temps = []
        for level in range(span, 1, -1):
            temp = f"hash_{chain.name}_{level}"
            prev = f"{chain.name}[{self._slot(base, level - 2)}]"
            w.line(
                f"{temp} = (({prev} << {params.shift}) ^ {fold_var}) "
                f"& {hex(params.order_mask(level))}"
            )
            temps.append((level, temp))
        for level, temp in temps:
            w.line(f"{chain.name}[{self._slot(base, level - 1)}] = {temp}")
        if self.facts is not None and chain.name in self.facts.redundant_chain_store_mask:
            # Range analysis: fold_bits <= k1, so the order-1 mask is identity.
            w.line(f"{chain.name}[{self._slot(base, 0)}] = {fold_var}")
        else:
            w.line(
                f"{chain.name}[{self._slot(base, 0)}] = {fold_var} & {hex(params.order_mask(1))}"
            )

    def _emit_history_shift(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        for slot in range(chain.span - 1, 0, -1):
            w.line(
                f"{chain.name}[{self._slot(base, slot)}] = "
                f"{chain.name}[{self._slot(base, slot - 1)}]"
            )
        w.line(f"{chain.name}[{self._slot(base, 0)}] = {feed}")


def _record_struct_format(model: CompressorModel) -> str:
    return "<" + "".join(_STRUCT_CODES[f.spec.bytes] for f in model.fields)


def generate_python(
    model: CompressorModel, codec: str = "bzip2", ir_facts: bool = True
) -> str:
    """Generate the source text of a specialized Python compressor module.

    ``ir_facts=False`` disables the IR-analysis-guided elisions and
    reproduces the pre-IR generator's output exactly; the differential
    tests compare compressed output across both settings.
    """
    codec_obj = codec_by_name(codec)
    facts_by_field = None
    if ir_facts:
        # Deferred import: repro.ir lowers through repro.codegen.plan.
        from repro.ir import analyze_model

        facts_by_field = analyze_model(model).fields
    plans = [plan_field(layout, model.options) for layout in model.fields]
    plan_by_index = {plan.layout.index: plan for plan in plans}
    order = [plan_by_index[layout.index] for layout in model.process_order]
    spec = model.spec

    w = CodeWriter()
    w.line('"""Trace compressor generated by TCgen (Python backend).')
    w.line("")
    w.line("Trace specification (canonical form):")
    w.line("")
    comments = {
        layout.index: (
            f"field {layout.index}: {layout.total_predictions} predictions, "
            f"{layout.table_bytes(model.options.shared_tables)} table bytes"
        )
        for layout in model.fields
    }
    for line in format_spec(spec, comments).rstrip("\n").split("\n"):
        w.line("    " + line if line else "")
    w.line('"""')
    w.line()
    w.line("import os")
    w.line("import struct")
    w.line("import sys")
    w.line("import tempfile")
    w.line("from array import array")
    w.line("from concurrent.futures import ThreadPoolExecutor")
    w.line()
    if codec_obj.name == "bzip2":
        w.line("import bz2")
        compress_call = "bz2.compress(data, 9)"
    elif codec_obj.name == "zlib":
        w.line("import zlib")
        compress_call = "zlib.compress(data, 9)"
    elif codec_obj.name == "lzma":
        w.line("import lzma")
        compress_call = "lzma.compress(data)"
    else:
        compress_call = "data"
    w.line()
    from repro import __version__ as generator_version

    w.line(f'GENERATOR_VERSION = "{generator_version}"')
    w.line(f"FINGERPRINT = {spec.fingerprint():#018x}")
    w.line(f"CODEC_ID = {codec_obj.codec_id}")
    w.line(f"HEADER_BYTES = {spec.header_bytes}")
    w.line(f"RECORD_BYTES = {spec.record_bytes}")
    w.line(f"STREAM_COUNT = {model.stream_count}")
    w.line(f"CHUNK_STREAMS = {2 * len(model.fields)}")
    w.line(f"DEFAULT_CHUNK_RECORDS = {default_chunk_records(spec.record_bytes)}")
    w.line(f"SPEC_TEXT = {format_spec(spec)!r}")
    w.line(f"OPTIONS = {asdict(model.options)!r}")
    w.line(f'_RECORD = struct.Struct("{_record_struct_format(model)}")')
    w.line()
    w.line("_last_usage = None")
    w.line("_last_lost = []")
    w.line()
    with w.block("def _post_compress(data):"):
        w.line(f"return {compress_call}")
    w.line()
    _emit_bounded_decompress(w, codec_obj.name)
    _emit_native_helper(w)

    _emit_parallel_helper(w)
    _emit_container_helpers(w, bool(spec.header_bits))
    _emit_fresh_tables(w, plans)
    _emit_compress(w, model, plans, order, facts_by_field)
    _emit_streaming(w, bool(spec.header_bits))
    _emit_decompress(w, model, plans, order, facts_by_field)
    _emit_usage_report(w, model, plans)
    _emit_main(w)
    return w.getvalue()


def _emit_native_helper(w: CodeWriter) -> None:
    """Emit ``_native_kernel``: optional in-process compiled fast path.

    The generated module stays stdlib-only and fully functional on its
    own; when the ``repro`` package that generated it is importable, the
    module can additionally borrow its native kernel loader so that
    ``backend="auto"`` runs the compiled C kernels in-process, or the
    NumPy columnar kernels when no native build is possible and the
    spec's vectorizable fraction clears the dispatch threshold.  Every
    failure (no repro, no compiler, build error, ``TCGEN_NATIVE=0``)
    quietly resolves to the pure-Python path with a recorded reason.
    """
    from repro.runtime.engine import NATIVE_BATCH_CHUNKS

    w.line("_native_state = [False, None, None]  # resolved, kernel, reason")
    w.line()
    with w.block("def _native_kernel():"):
        w.line('"""(kernel, reason): the in-process compiled kernel, if loadable."""')
        with w.block("if _native_state[0]:"):
            w.line("return _native_state[1], _native_state[2]")
        w.line("_native_state[0] = True")
        with w.block('if os.environ.get("TCGEN_NATIVE", "1") == "0":'):
            w.line('_native_state[2] = "native backend disabled via TCGEN_NATIVE=0"')
            w.line("return None, _native_state[2]")
        with w.block("try:"):
            w.line("from repro.codegen.native import load_native_kernel")
            w.line("from repro.model.layout import build_model")
            w.line("from repro.model.optimize import OptimizationOptions")
            w.line("from repro.spec.parser import parse_spec")
            w.line("model = build_model(parse_spec(SPEC_TEXT), OptimizationOptions(**OPTIONS))")
            with w.block("if model.fingerprint() != FINGERPRINT:"):
                w.line('raise ValueError("rebuilt model fingerprint mismatch")')
            w.line("_native_state[1] = load_native_kernel(model)")
        with w.block("except Exception as exc:"):
            w.line("_native_state[2] = str(exc) or exc.__class__.__name__")
            w.line("return None, _native_state[2]")
        w.line("return _native_state[1], None")
    w.line()
    w.line("_numpy_state = [False, None, None, False]  # resolved, kernel, reason, auto_ok")
    w.line()
    with w.block("def _numpy_kernel():"):
        w.line('"""(kernel, reason, auto_ok): the columnar kernel, if loadable."""')
        with w.block("if _numpy_state[0]:"):
            w.line("return _numpy_state[1], _numpy_state[2], _numpy_state[3]")
        w.line("_numpy_state[0] = True")
        with w.block('if os.environ.get("TCGEN_NUMPY", "1") == "0":'):
            w.line('_numpy_state[2] = "numpy backend disabled via TCGEN_NUMPY=0"')
            w.line("return None, _numpy_state[2], False")
        with w.block("try:"):
            w.line("from repro.codegen.numpy_backend import load_numpy_kernel")
            w.line("from repro.ir.vector import AUTO_NUMPY_THRESHOLD, vectorizable_fraction")
            w.line("from repro.model.layout import build_model")
            w.line("from repro.model.optimize import OptimizationOptions")
            w.line("from repro.spec.parser import parse_spec")
            w.line("model = build_model(parse_spec(SPEC_TEXT), OptimizationOptions(**OPTIONS))")
            with w.block("if model.fingerprint() != FINGERPRINT:"):
                w.line('raise ValueError("rebuilt model fingerprint mismatch")')
            w.line("_numpy_state[1] = load_numpy_kernel(model)")
            w.line("_numpy_state[3] = vectorizable_fraction(model) >= AUTO_NUMPY_THRESHOLD")
        with w.block("except Exception as exc:"):
            w.line("_numpy_state[2] = str(exc) or exc.__class__.__name__")
            w.line("return None, _numpy_state[2], False")
        w.line("return _numpy_state[1], None, _numpy_state[3]")
    w.line()
    with w.block("def _resolve_backend(backend):"):
        w.line('"""Turn auto/python/numpy/native into (kernel-or-None); validate."""')
        with w.block('if backend not in ("auto", "python", "numpy", "native"):'):
            w.line('raise ValueError("backend must be auto, python, numpy, or native; got %r" % (backend,))')
        with w.block('if backend == "python":'):
            w.line("return None")
        with w.block('if backend == "numpy":'):
            w.line("kernel, reason, _ = _numpy_kernel()")
            with w.block("if kernel is None:"):
                w.line('raise RuntimeError("numpy backend unavailable: %s" % reason)')
            w.line("return kernel")
        w.line("kernel, reason = _native_kernel()")
        with w.block('if kernel is None and backend == "native":'):
            w.line('raise RuntimeError("native backend unavailable: %s" % reason)')
        with w.block("if kernel is None:"):
            w.line("columnar, _, auto_ok = _numpy_kernel()")
            with w.block("if columnar is not None and auto_ok:"):
                w.line("return columnar")
        w.line("return kernel")
    w.line()
    w.line(
        f"_BATCH = {NATIVE_BATCH_CHUNKS}"
        "  # chunks per native FFI crossing (ABI 2 batch entry points)"
    )
    w.line()


def _emit_bounded_decompress(w: CodeWriter, codec_name: str) -> None:
    """Emit ``_post_decompress_bounded``: decode capped by the declared length."""
    with w.block("def _post_decompress_bounded(data, limit):"):
        w.line('"""Decompress at most ``limit`` bytes; ValueError past that."""')
        if codec_name == "identity":
            with w.block("if len(data) > limit:"):
                w.line('raise ValueError("stream holds more bytes than declared")')
            w.line("return data")
        else:
            with w.block("try:"):
                if codec_name == "zlib":
                    w.line("decomp = zlib.decompressobj()")
                    w.line("out = decomp.decompress(data, limit + 1)")
                    with w.block("while decomp.unconsumed_tail and len(out) <= limit:"):
                        w.line(
                            "chunk = decomp.decompress("
                            "decomp.unconsumed_tail, limit + 1 - len(out))"
                        )
                        with w.block("if not chunk:"):
                            w.line("break")
                        w.line("out += chunk")
                else:
                    ctor = {
                        "bzip2": "bz2.BZ2Decompressor",
                        "lzma": "lzma.LZMADecompressor",
                    }[codec_name]
                    w.line(f"decomp = {ctor}()")
                    w.line("out = decomp.decompress(data, limit + 1)")
                    with w.block(
                        "while not decomp.eof and not decomp.needs_input and len(out) <= limit:"
                    ):
                        w.line('chunk = decomp.decompress(b"", limit + 1 - len(out))')
                        with w.block("if not chunk:"):
                            w.line("break")
                        w.line("out += chunk")
            with w.block("except ValueError:"):
                w.line("raise")
            with w.block("except Exception as exc:"):
                w.line('raise ValueError("post-decompression failed: %s" % exc)')
            with w.block("if len(out) > limit:"):
                w.line('raise ValueError("stream decompressed past its declared length")')
            w.line("return out")
    w.line()


def _emit_parallel_helper(w: CodeWriter) -> None:
    with w.block("def _map_ordered(fn, items, workers):"):
        w.line('"""Ordered map, on a thread pool when workers > 1."""')
        with w.block("if workers is None or workers <= 1 or len(items) <= 1:"):
            w.line("return [fn(item) for item in items]")
        with w.block(
            "with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:"
        ):
            w.line("return list(pool.map(fn, items))")
    w.line()
    with w.block("def _crc32c_table():"):
        w.line("table = []")
        with w.block("for n in range(256):"):
            w.line("c = n")
            with w.block("for _ in range(8):"):
                w.line("c = (c >> 1) ^ 0x82F63B78 if c & 1 else c >> 1")
            w.line("table.append(c)")
        w.line("return table")
    w.line()
    w.line("_CRC_TABLE = _crc32c_table()")
    w.line()
    with w.block("def _crc32c(data):"):
        w.line('"""CRC32C (Castagnoli) over ``data``, matching the v3 container."""')
        w.line("crc = 0xFFFFFFFF")
        w.line("table = _CRC_TABLE")
        with w.block("for byte in data:"):
            w.line("crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]")
        w.line("return crc ^ 0xFFFFFFFF")
    w.line()


def _emit_container_helpers(w: CodeWriter, has_header: bool) -> None:
    with w.block("def _write_varint(out, value):"):
        with w.block("while True:"):
            w.line("byte = value & 0x7F")
            w.line("value >>= 7")
            with w.block("if value:"):
                w.line("out.append(byte | 0x80)")
            with w.block("else:"):
                w.line("out.append(byte)")
                w.line("return")
    w.line()
    with w.block("def _read_varint(blob, pos):"):
        w.line("result = 0")
        w.line("shift = 0")
        with w.block("while True:"):
            with w.block("if pos >= len(blob):"):
                w.line('raise ValueError("truncated container")')
            w.line("byte = blob[pos]")
            w.line("pos += 1")
            w.line("result |= (byte & 0x7F) << shift")
            with w.block("if not byte & 0x80:"):
                w.line("return result, pos")
            w.line("shift += 7")
            with w.block("if shift > 70:"):
                w.line('raise ValueError("varint longer than 10 bytes")')
    w.line()
    with w.block("def _read_stream_meta(blob, pos):"):
        with w.block("if pos >= len(blob):"):
            w.line('raise ValueError("truncated container")')
        with w.block("if blob[pos] != CODEC_ID:"):
            w.line('raise ValueError("unexpected stream codec")')
        w.line("raw_length, pos = _read_varint(blob, pos + 1)")
        w.line("stored, pos = _read_varint(blob, pos)")
        w.line("# Declared lengths larger than the whole blob are hostile:")
        w.line("# refuse before any slicing or decompression happens.")
        with w.block("if stored > len(blob):"):
            w.line('raise ValueError("declared stored length exceeds the container")')
        w.line("return raw_length, stored, pos")
    w.line()
    with w.block("def _decompress_streams(pairs, workers):"):
        w.line('"""Post-decompress (piece, raw_length) pairs, verifying lengths."""')
        w.line(
            "datas = _map_ordered("
            "lambda pair: _post_decompress_bounded(pair[0], pair[1]), pairs, workers)"
        )
        with w.block("for data, pair in zip(datas, pairs):"):
            with w.block("if len(data) != pair[1]:"):
                w.line('raise ValueError("stream length mismatch")')
        w.line("return datas")
    w.line()
    with w.block("def _encode_container(record_count, streams, workers=1):"):
        w.line("raws = [bytes(stream) for stream in streams]")
        w.line("payloads = _map_ordered(_post_compress, raws, workers)")
        w.line('out = bytearray(b"TCGN")')
        w.line("out.append(1)")
        w.line('out += FINGERPRINT.to_bytes(8, "little")')
        w.line("_write_varint(out, record_count)")
        w.line("_write_varint(out, len(raws))")
        with w.block("for raw, payload in zip(raws, payloads):"):
            w.line("out.append(CODEC_ID)")
            w.line("_write_varint(out, len(raw))")
            w.line("_write_varint(out, len(payload))")
        with w.block("for payload in payloads:"):
            w.line("out += payload")
        w.line("return bytes(out)")
    w.line()
    if has_header:
        signature = "def _encode_container_chunked(record_count, chunk_records, head, chunks, workers=1):"
    else:
        signature = "def _encode_container_chunked(record_count, chunk_records, chunks, workers=1):"
    with w.block(signature):
        w.line('"""Emit a v3 chunked container: v2 layout + CRC32C framing."""')
        if has_header:
            w.line("raws = [bytes(head)]")
        else:
            w.line("raws = []")
        with w.block("for _count, streams in chunks:"):
            with w.block("for stream in streams:"):
                w.line("raws.append(bytes(stream))")
        w.line("payloads = _map_ordered(_post_compress, raws, workers)")
        w.line('out = bytearray(b"TCGN")')
        w.line("out.append(3)")
        w.line('out += FINGERPRINT.to_bytes(8, "little")')
        w.line("_write_varint(out, record_count)")
        w.line("_write_varint(out, chunk_records)")
        if has_header:
            w.line("_write_varint(out, 1)")
            w.line("out.append(CODEC_ID)")
            w.line("_write_varint(out, len(raws[0]))")
            w.line("_write_varint(out, len(payloads[0]))")
            w.line("meta = 1")
        else:
            w.line("_write_varint(out, 0)")
            w.line("meta = 0")
        w.line("_write_varint(out, CHUNK_STREAMS if chunks else 0)")
        w.line("_write_varint(out, len(chunks))")
        with w.block("for count, streams in chunks:"):
            w.line("_write_varint(out, count)")
            with w.block("for stream in streams:"):
                w.line("out.append(CODEC_ID)")
                w.line("_write_varint(out, len(stream))")
                w.line("_write_varint(out, len(payloads[meta]))")
                w.line("meta += 1")
        w.line("header_crc = _crc32c(out)")
        w.line('crcs = bytearray(header_crc.to_bytes(4, "little"))')
        w.line('out += header_crc.to_bytes(4, "little")')
        if has_header:
            w.line("crc = _crc32c(payloads[0])")
            w.line("out += payloads[0]")
            w.line('out += crc.to_bytes(4, "little")')
            w.line('crcs += crc.to_bytes(4, "little")')
            w.line("meta = 1")
        else:
            w.line("meta = 0")
        with w.block("for _count, _streams in chunks:"):
            w.line('payload = b"".join(payloads[meta : meta + CHUNK_STREAMS])')
            w.line("meta += CHUNK_STREAMS")
            w.line("crc = _crc32c(payload)")
            w.line("out += payload")
            w.line('out += crc.to_bytes(4, "little")')
            w.line('crcs += crc.to_bytes(4, "little")')
        w.line('out += b"TCEN"')
        w.line('out += _crc32c(bytes(crcs)).to_bytes(4, "little")')
        w.line("return bytes(out)")
    w.line()
    with w.block("def _read_chunk_table(blob, pos, chunk_records):"):
        w.line('"""Parse the shared v2/v3 chunk table; returns (cmetas, pos)."""')
        w.line("chunk_streams, pos = _read_varint(blob, pos)")
        w.line("chunk_count, pos = _read_varint(blob, pos)")
        with w.block("if chunk_count and chunk_streams != CHUNK_STREAMS:"):
            w.line('raise ValueError("unexpected stream count")')
        with w.block("if chunk_count > len(blob):"):
            w.line('raise ValueError("declared chunk count exceeds the container")')
        w.line("cmetas = []")
        with w.block("for _ in range(chunk_count):"):
            w.line("count, pos = _read_varint(blob, pos)")
            with w.block("if count < 1 or count > chunk_records:"):
                w.line('raise ValueError("bad chunk record count")')
            w.line("metas = []")
            with w.block("for _ in range(chunk_streams):"):
                w.line("raw_length, stored, pos = _read_stream_meta(blob, pos)")
                w.line("metas.append((raw_length, stored))")
            w.line("cmetas.append((count, metas))")
        w.line("return cmetas, pos")
    w.line()
    with w.block("def _parse_v4_frame(blob, pos, chunk_records):"):
        w.line('"""Parse one v4 chunk frame at ``pos``: (index, count, pairs, end).')
        w.line("")
        w.line('    Raises ValueError; a message starting with "torn" means the')
        w.line("    frame runs past the end of the data (truncation, not damage).")
        w.line('    """')
        with w.block('if blob[pos : pos + 4] != b"TCCK":'):
            w.line('raise ValueError("bad chunk frame magic")')
        with w.block("try:"):
            w.line("length, body = _read_varint(blob, pos + 4)")
        with w.block("except ValueError as exc:"):
            with w.block('if "truncated" in str(exc):'):
                w.line('raise ValueError("torn chunk frame")')
            w.line("raise")
        with w.block("if length < 7:"):
            w.line('raise ValueError("chunk frame impossibly short")')
        w.line("end = body + length")
        with w.block("if end > len(blob):"):
            w.line('raise ValueError("torn chunk frame")')
        with w.block(
            'if _crc32c(blob[pos : end - 4]) != int.from_bytes(blob[end - 4 : end], "little"):'
        ):
            w.line('raise ValueError("chunk frame checksum mismatch")')
        w.line("index, fpos = _read_varint(blob, body)")
        w.line("count, fpos = _read_varint(blob, fpos)")
        with w.block("if count < 1 or count > chunk_records:"):
            w.line('raise ValueError("bad chunk record count")')
        w.line("stream_count, fpos = _read_varint(blob, fpos)")
        with w.block("if stream_count != CHUNK_STREAMS:"):
            w.line('raise ValueError("unexpected stream count")')
        w.line("metas = []")
        with w.block("for _ in range(stream_count):"):
            w.line("raw_length, stored, fpos = _read_stream_meta(blob, fpos)")
            w.line("metas.append((raw_length, stored))")
        w.line("pairs = []")
        with w.block("for raw_length, stored in metas:"):
            with w.block("if fpos + stored > end - 4:"):
                w.line('raise ValueError("stream payload overruns its frame")')
            w.line("pairs.append((blob[fpos : fpos + stored], raw_length))")
            w.line("fpos += stored")
        with w.block("if fpos != end - 4:"):
            w.line('raise ValueError("frame length mismatch")')
        w.line("return index, count, pairs, end")
    w.line()
    with w.block("def _parse_v4_trailer(blob, pos):"):
        w.line('"""Parse the v4 clean-close trailer: (ok, record_count, end)."""')
        with w.block("try:"):
            w.line("total, tpos = _read_varint(blob, pos + 4)")
            w.line("table_len, tpos = _read_varint(blob, tpos)")
            with w.block("if table_len > len(blob):"):
                w.line("return False, 0, pos")
            with w.block("for _ in range(table_len):"):
                w.line("_count, tpos = _read_varint(blob, tpos)")
                w.line("_bytes, tpos = _read_varint(blob, tpos)")
            with w.block("if tpos + 4 > len(blob):"):
                w.line("return False, 0, pos")
            with w.block(
                'if _crc32c(blob[pos : tpos]) != int.from_bytes(blob[tpos : tpos + 4], "little"):'
            ):
                w.line("return False, 0, pos")
            w.line("return True, total, tpos + 4")
        with w.block("except ValueError:"):
            w.line("return False, 0, pos")
    w.line()
    with w.block("def _find_v4_resync(blob, start, chunk_records):"):
        w.line('"""Scan for the next CRC-valid frame or trailer boundary (-1: none)."""')
        w.line("pos = start")
        with w.block("while True:"):
            w.line('c = blob.find(b"TCCK", pos)')
            w.line('t = blob.find(b"TCST", pos)')
            w.line("spots = [s for s in (c, t) if s >= 0]")
            with w.block("if not spots:"):
                w.line("return -1")
            w.line("cand = min(spots)")
            with w.block("if cand == t and cand != c:"):
                w.line("ok, _total, _end = _parse_v4_trailer(blob, cand)")
                with w.block("if ok:"):
                    w.line("return cand")
                w.line("pos = cand + 1")
                w.line("continue")
            with w.block("try:"):
                w.line("_parse_v4_frame(blob, cand, chunk_records)")
                w.line("return cand")
            with w.block("except ValueError as exc:"):
                with w.block('if str(exc).startswith("torn"):'):
                    w.line("return -1")
                w.line("pos = cand + 1")
    w.line()
    head_item = "head_pair, " if has_header else ""
    with w.block("def _decode_container(blob, salvage=False):"):
        w.line(f'"""Parse any container version into (records, {head_item}chunks, lost).')
        w.line("")
        w.line("    ``chunks`` holds (index, record_count, [(piece, raw_length), ...])")
        w.line("    per surviving chunk; ``lost`` holds (index, reason) per chunk the")
        w.line("    v3 checksums condemned (always empty for v1/v2 and in strict")
        w.line("    mode, which raises instead).")
        w.line('    """')
        with w.block('if len(blob) < 13 or blob[:4] != b"TCGN":'):
            w.line('raise ValueError("not a TCgen container")')
        w.line("version = blob[4]")
        w.line("# v3/v4 re-check the fingerprint after their metadata CRC held,")
        w.line("# so a flipped fingerprint bit reads as corruption, not mismatch.")
        with w.block(
            'if version not in (3, 4) and int.from_bytes(blob[5:13], "little") != FINGERPRINT:'
        ):
            w.line('raise ValueError("compressed trace does not match this specification")')
        with w.block("if version == 1:"):
            w.line("record_count, pos = _read_varint(blob, 13)")
            w.line("stream_count, pos = _read_varint(blob, pos)")
            with w.block("if stream_count != STREAM_COUNT:"):
                w.line('raise ValueError("unexpected stream count")')
            w.line("metas = []")
            with w.block("for _ in range(stream_count):"):
                w.line("raw_length, stored, pos = _read_stream_meta(blob, pos)")
                w.line("metas.append((raw_length, stored))")
            w.line("pairs = []")
            with w.block("for raw_length, stored in metas:"):
                with w.block("if pos + stored > len(blob):"):
                    w.line('raise ValueError("truncated stream payload")')
                w.line("pairs.append((blob[pos : pos + stored], raw_length))")
                w.line("pos += stored")
            with w.block("if pos != len(blob):"):
                w.line('raise ValueError("trailing bytes after last stream")')
            if has_header:
                w.line("return record_count, pairs[0], [(0, record_count, pairs[1:])], []")
            else:
                w.line("return record_count, [(0, record_count, pairs)], []")
        with w.block("if version == 4:"):
            w.line("# v4: append-only stream framing — prologue, self-framed chunk")
            w.line("# frames, optional clean-close trailer (no upfront record count).")
            w.line("chunk_records, pos = _read_varint(blob, 13)")
            with w.block("if chunk_records < 1:"):
                w.line('raise ValueError("bad chunk record cap")')
            w.line("global_count, pos = _read_varint(blob, pos)")
            with w.block(f"if global_count != {1 if has_header else 0}:"):
                w.line('raise ValueError("unexpected global stream count")')
            if has_header:
                w.line("_raw, _stored, pos = _read_stream_meta(blob, pos)")
                w.line("gmeta = (_raw, _stored)")
            with w.block("if pos + 4 > len(blob):"):
                w.line('raise ValueError("truncated container")')
            with w.block(
                'if _crc32c(blob[:pos]) != int.from_bytes(blob[pos : pos + 4], "little"):'
            ):
                w.line('raise ValueError("stream prologue checksum mismatch")')
            with w.block('if int.from_bytes(blob[5:13], "little") != FINGERPRINT:'):
                w.line('raise ValueError("compressed trace does not match this specification")')
            w.line("pos += 4")
            w.line("lost = []")
            if has_header:
                w.line("gsize = gmeta[1]")
                w.line("end = pos + gsize + 4")
                w.line("head_pair = None")
                with w.block(
                    "if end <= len(blob) and _crc32c(blob[pos : pos + gsize]) == "
                    'int.from_bytes(blob[pos + gsize : end], "little"):'
                ):
                    w.line("head_pair = (blob[pos : pos + gsize], gmeta[0])")
                with w.block("elif not salvage:"):
                    with w.block("if end > len(blob):"):
                        w.line('raise ValueError("truncated container")')
                    w.line('raise ValueError("header stream checksum mismatch")')
                with w.block("else:"):
                    w.line('lost.append((-1, "header stream damaged"))')
                w.line("pos = min(end, len(blob))")
            w.line("chunks = []")
            w.line("expected = 0")
            w.line("total = None")
            with w.block("while pos < len(blob):"):
                with w.block('if blob[pos : pos + 4] == b"TCST":'):
                    w.line("ok, trailer_total, tend = _parse_v4_trailer(blob, pos)")
                    with w.block("if ok and tend == len(blob):"):
                        w.line("total = trailer_total")
                        w.line("pos = tend")
                        w.line("break")
                    with w.block("if not salvage:"):
                        w.line('raise ValueError("stream trailer damaged")')
                with w.block("try:"):
                    w.line(
                        "index, count, cpairs, end = _parse_v4_frame(blob, pos, chunk_records)"
                    )
                with w.block("except ValueError as exc:"):
                    w.line('torn = str(exc).startswith("torn")')
                    with w.block("if not salvage:"):
                        w.line("raise")
                    w.line("nxt = _find_v4_resync(blob, pos + 1, chunk_records)")
                    with w.block("if nxt < 0:"):
                        w.line("# Nothing valid beyond: a torn tail loses no acked")
                        w.line("# records, anything else condemns the pending chunk.")
                        with w.block("if not torn:"):
                            w.line(
                                'lost.append((expected, "damaged data at byte offset %d" % pos))'
                            )
                        w.line("break")
                    w.line("pos = nxt")
                    w.line("continue")
                with w.block("if index < expected:"):
                    with w.block("if not salvage:"):
                        w.line('raise ValueError("chunk frame out of order")')
                    w.line("pos = end")
                    w.line("continue")
                with w.block("if index > expected:"):
                    with w.block("if not salvage:"):
                        w.line('raise ValueError("chunk frame index gap")')
                    with w.block("for missing in range(expected, index):"):
                        with w.block("if all(entry[0] != missing for entry in lost):"):
                            w.line(
                                'lost.append((missing, "chunk frame missing from stream"))'
                            )
                    w.line("expected = index")
                w.line("chunks.append((index, count, cpairs))")
                w.line("expected += 1")
                w.line("pos = end")
            w.line("record_count = sum(entry[1] for entry in chunks)")
            with w.block(
                "if total is not None and total != record_count "
                "and all(entry[0] < 0 for entry in lost):"
            ):
                with w.block("if not salvage:"):
                    w.line('raise ValueError("trailer record count mismatch")')
                w.line('lost.append((-2, "trailer record count mismatch"))')
            if has_header:
                w.line("return record_count, head_pair, chunks, lost")
            else:
                w.line("return record_count, chunks, lost")
        with w.block("if version not in (2, 3):"):
            w.line('raise ValueError("unsupported container version %d" % version)')
        w.line("record_count, pos = _read_varint(blob, 13)")
        w.line("chunk_records, pos = _read_varint(blob, pos)")
        w.line("global_count, pos = _read_varint(blob, pos)")
        with w.block(f"if global_count != {1 if has_header else 0}:"):
            w.line('raise ValueError("unexpected global stream count")')
        if has_header:
            w.line("_raw, _stored, pos = _read_stream_meta(blob, pos)")
            w.line("gmeta = (_raw, _stored)")
        w.line("cmetas, pos = _read_chunk_table(blob, pos, chunk_records)")
        with w.block("if sum(count for count, _m in cmetas) != record_count:"):
            w.line('raise ValueError("chunk table does not cover the record count")')
        w.line("lost = []")
        with w.block("if version == 3:"):
            w.line("# v3: checksummed header, then CRC-framed payload sections.")
            with w.block("if pos + 4 > len(blob):"):
                w.line('raise ValueError("truncated container")')
            with w.block(
                'if _crc32c(blob[:pos]) != int.from_bytes(blob[pos : pos + 4], "little"):'
            ):
                w.line('raise ValueError("container header checksum mismatch")')
            with w.block('if int.from_bytes(blob[5:13], "little") != FINGERPRINT:'):
                w.line(
                    'raise ValueError("compressed trace does not match this specification")'
                )
            w.line("crcs = bytearray(blob[pos : pos + 4])")
            w.line("pos += 4")
            if has_header:
                w.line("gsize = gmeta[1]")
                w.line("end = pos + gsize + 4")
                w.line("head_pair = None")
                with w.block(
                    "if end <= len(blob) and _crc32c(blob[pos : pos + gsize]) == "
                    'int.from_bytes(blob[pos + gsize : end], "little"):'
                ):
                    w.line("head_pair = (blob[pos : pos + gsize], gmeta[0])")
                    w.line("crcs += blob[pos + gsize : end]")
                with w.block("elif not salvage:"):
                    with w.block("if end > len(blob):"):
                        w.line('raise ValueError("truncated container")')
                    w.line('raise ValueError("header stream checksum mismatch")')
                with w.block("else:"):
                    w.line('lost.append((-1, "header stream damaged"))')
                w.line("pos = min(end, len(blob))")
            w.line("chunks = []")
            with w.block("for index, (count, metas) in enumerate(cmetas):"):
                w.line("size = sum(stored for _r, stored in metas)")
                w.line("end = pos + size + 4")
                with w.block(
                    "if end <= len(blob) and _crc32c(blob[pos : pos + size]) == "
                    'int.from_bytes(blob[pos + size : end], "little"):'
                ):
                    w.line("crcs += blob[pos + size : end]")
                    w.line("pairs = []")
                    w.line("piece_pos = pos")
                    with w.block("for raw_length, stored in metas:"):
                        w.line(
                            "pairs.append((blob[piece_pos : piece_pos + stored], raw_length))"
                        )
                        w.line("piece_pos += stored")
                    w.line("chunks.append((index, count, pairs))")
                with w.block("elif not salvage:"):
                    with w.block("if end > len(blob):"):
                        w.line('raise ValueError("truncated container")')
                    w.line(
                        'raise ValueError("chunk %d payload checksum mismatch" % index)'
                    )
                with w.block("else:"):
                    w.line('lost.append((index, "chunk payload damaged"))')
                w.line("pos = min(end, len(blob))")
            with w.block("if not salvage:"):
                with w.block(
                    'if pos + 8 > len(blob) or blob[pos : pos + 4] != b"TCEN":'
                ):
                    w.line('raise ValueError("container trailer missing or damaged")')
                with w.block(
                    'if int.from_bytes(blob[pos + 4 : pos + 8], "little") != _crc32c(bytes(crcs)):'
                ):
                    w.line('raise ValueError("trailer checksum mismatch")')
                with w.block("if pos + 8 != len(blob):"):
                    w.line(
                        "# An optional skip-index frame (TCIX) may follow the"
                    )
                    w.line(
                        "# trailer.  It is opaque to this module, but it must"
                    )
                    w.line(
                        "# frame correctly -- anything else is trailing garbage."
                    )
                    with w.block('if blob[pos + 8 : pos + 12] != b"TCIX":'):
                        w.line(
                            'raise ValueError("trailing bytes after container trailer")'
                        )
                    w.line("flen, fpos = _read_varint(blob, pos + 12)")
                    with w.block("if flen < 4 or fpos + flen != len(blob):"):
                        w.line('raise ValueError("skip index frame length mismatch")')
                    with w.block(
                        "if _crc32c(blob[pos + 8 : fpos + flen - 4]) != "
                        'int.from_bytes(blob[fpos + flen - 4 :], "little"):'
                    ):
                        w.line(
                            'raise ValueError("skip index frame checksum mismatch")'
                        )
            if has_header:
                w.line("return record_count, head_pair, chunks, lost")
            else:
                w.line("return record_count, chunks, lost")
        w.line("# v2: unchecked payloads, concatenated in metadata order.")
        if has_header:
            w.line("head_pair = None")
            with w.block("if pos + gmeta[1] > len(blob):"):
                w.line('raise ValueError("truncated stream payload")')
            w.line("head_pair = (blob[pos : pos + gmeta[1]], gmeta[0])")
            w.line("pos += gmeta[1]")
        w.line("chunks = []")
        with w.block("for index, (count, metas) in enumerate(cmetas):"):
            w.line("pairs = []")
            with w.block("for raw_length, stored in metas:"):
                with w.block("if pos + stored > len(blob):"):
                    w.line('raise ValueError("truncated stream payload")')
                w.line("pairs.append((blob[pos : pos + stored], raw_length))")
                w.line("pos += stored")
            w.line("chunks.append((index, count, pairs))")
        with w.block("if pos != len(blob):"):
            w.line('raise ValueError("trailing bytes after last stream")')
        if has_header:
            w.line("return record_count, head_pair, chunks, lost")
        else:
            w.line("return record_count, chunks, lost")
    w.line()


def _emit_fresh_tables(w: CodeWriter, plans: list[FieldPlan]) -> None:
    names: list[str] = []
    with w.block("def _fresh_tables():"):
        w.line('"""Allocate zeroed predictor tables (one call per run)."""')
        for plan in plans:
            for last in plan.lasts:
                code = _TYPECODES[last.elem_bytes]
                size = last.lines * last.depth
                w.line(
                    f'{last.name} = array("{code}", bytes({last.elem_bytes} * {size}))'
                )
                names.append(last.name)
            for chain in plan.chains:
                code = _TYPECODES[chain.elem_bytes]
                size = chain.lines * chain.span
                w.line(
                    f'{chain.name} = array("{code}", bytes({chain.elem_bytes} * {size}))'
                )
                names.append(chain.name)
            for l2 in plan.l2s:
                code = _TYPECODES[l2.elem_bytes]
                size = l2.lines * l2.depth
                w.line(f'{l2.name} = array("{code}", bytes({l2.elem_bytes} * {size}))')
                names.append(l2.name)
        w.line("return (")
        w.indent()
        for name in names:
            w.line(f"{name},")
        w.dedent()
        w.line(")")
    w.line()
    # Remember the tuple order for the unpacking emitted in compress/decompress.
    w._table_names = names  # type: ignore[attr-defined]


def _emit_table_unpack(w: CodeWriter) -> None:
    names = w._table_names  # type: ignore[attr-defined]
    w.line("(")
    w.indent()
    for name in names:
        w.line(f"{name},")
    w.dedent()
    w.line(") = _fresh_tables()")


def _emit_compress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    spec = model.spec
    pc_f = model.pc_field.index
    with w.block("def _compress_chunk(raw, pos, count):"):
        w.line('"""Compress ``count`` records from ``pos`` with fresh tables."""')
        _emit_table_unpack(w)
        for plan in plans:
            f = plan.layout.index
            w.line(f"codes{f} = bytearray()")
            w.line(f"values{f} = bytearray()")
            w.line(f"usage{f} = [0] * {plan.layout.total_predictions + 1}")
        with w.block("for _ in range(count):"):
            unpack_targets = ", ".join(f"value{plan.layout.index}" for plan in plans)
            w.line(f"{unpack_targets}{',' if len(plans) == 1 else ''} = _RECORD.unpack_from(raw, pos)")
            w.line("pos += RECORD_BYTES")
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _FieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                value = vars.value
                w.line(f"# field {f}: match the value against the predictions")
                for code, pvar in enumerate(vars.predictions):
                    keyword = "if" if code == 0 else "elif"
                    with w.block(f"{keyword} {value} == {pvar}:"):
                        w.line(f"code = {code}")
                with w.block("else:"):
                    w.line(f"code = {layout.miss_code}")
                    w.line(f'values{f} += {value}.to_bytes({layout.value_bytes}, "little")')
                if layout.code_bytes == 1:
                    w.line(f"codes{f}.append(code)")
                else:
                    w.line(f'codes{f} += code.to_bytes({layout.code_bytes}, "little")')
                w.line(f"usage{f}[code] += 1")
                emitter.emit_commit(w, vars)
        streams = ", ".join(
            f"codes{p.layout.index}, values{p.layout.index}" for p in plans
        )
        usages = ", ".join(f"usage{p.layout.index}" for p in plans)
        w.line(f"return [{streams}], [{usages}]")
    w.line()
    with w.block('def compress(raw, chunk_records=None, workers=1, backend="auto"):'):
        w.line('"""Compress raw trace bytes into a container blob.')
        w.line("")
        w.line("    Without ``chunk_records`` the output is a flat v1 container;")
        w.line("    with it, a chunked v3 container (CRC32C-framed) whose chunks")
        w.line('    carry independent predictor state (0 or "auto" picks ~1 MB raw')
        w.line("    per chunk).")
        w.line("    ``workers`` parallelizes post-compression on a thread pool;")
        w.line("    output bytes are identical for any worker count.")
        w.line('    ``backend`` picks the kernel stage: "python" (pure), "numpy"')
        w.line('    (columnar NumPy kernels), "native" (in-process compiled C;')
        w.line('    RuntimeError when unavailable), or "auto" (native when')
        w.line("    loadable, else numpy when the spec vectorizes well, else")
        w.line("    python). Output bytes are identical for every backend.")
        w.line('    """')
        w.line("global _last_usage")
        with w.block("if (len(raw) - HEADER_BYTES) % RECORD_BYTES:"):
            w.line('raise ValueError("trace does not frame into records")')
        w.line("record_count = (len(raw) - HEADER_BYTES) // RECORD_BYTES")
        with w.block("if chunk_records is not None:"):
            with w.block('if chunk_records == "auto" or chunk_records == 0:'):
                w.line("chunk_records = DEFAULT_CHUNK_RECORDS")
            with w.block("if chunk_records < 1:"):
                w.line('raise ValueError("chunk_records must be positive")')
        with w.block("if chunk_records is None:"):
            w.line("spans = [(HEADER_BYTES, record_count)]")
        with w.block("else:"):
            w.line("spans = []")
            w.line("start = 0")
            with w.block("while start < record_count:"):
                w.line("count = min(chunk_records, record_count - start)")
                w.line("spans.append((HEADER_BYTES + start * RECORD_BYTES, count))")
                w.line("start += count")
        w.line("kernel = _resolve_backend(backend)")
        with w.block("if kernel is not None:"):
            w.line(
                "slices = [raw[pos : pos + count * RECORD_BYTES] "
                "for pos, count in spans]"
            )
            with w.block('if hasattr(kernel, "compress_batch"):'):
                w.line("results = []")
                with w.block("for i in range(0, len(slices), _BATCH):"):
                    w.line(
                        "results.extend(kernel.compress_batch("
                        "slices[i : i + _BATCH]))"
                    )
            with w.block("else:"):
                w.line("results = [kernel.compress_chunk(piece) for piece in slices]")
        with w.block("else:"):
            w.line("results = [_compress_chunk(raw, pos, count) for pos, count in spans]")
        sizes = ", ".join(
            f"[0] * {p.layout.total_predictions + 1}" for p in plans
        )
        w.line(f"usage_totals = [{sizes}]")
        with w.block("for _streams, usage in results:"):
            with w.block("for totals, counts in zip(usage_totals, usage):"):
                with w.block("for code, count in enumerate(counts):"):
                    w.line("totals[code] += count")
        w.line("_last_usage = usage_totals")
        with w.block("if chunk_records is None:"):
            if spec.header_bits:
                w.line("streams = [raw[:HEADER_BYTES]]")
            else:
                w.line("streams = []")
            w.line("streams += results[0][0]")
            w.line("return _encode_container(record_count, streams, workers)")
        w.line(
            "chunks = [(span[1], result[0]) for span, result in zip(spans, results)]"
        )
        if spec.header_bits:
            w.line(
                "return _encode_container_chunked(record_count, chunk_records, "
                "raw[:HEADER_BYTES], chunks, workers)"
            )
        else:
            w.line(
                "return _encode_container_chunked(record_count, chunk_records, "
                "chunks, workers)"
            )
    w.line()


def _emit_streaming(w: CodeWriter, has_header: bool) -> None:
    """Emit ``open_stream`` + ``_StreamWriter``: the generated v4 writer.

    Byte-identical to the engine's :class:`repro.streaming.StreamingCompressor`
    for the same flush boundaries — same kernels, same codec, same framing.
    """
    with w.block("def _encode_v4_frame(index, count, streams):"):
        w.line('"""One self-framed v4 chunk: magic, length, body, CRC32C."""')
        w.line("raws = [bytes(stream) for stream in streams]")
        w.line("payloads = [_post_compress(raw) for raw in raws]")
        w.line("body = bytearray()")
        w.line("_write_varint(body, index)")
        w.line("_write_varint(body, count)")
        w.line("_write_varint(body, len(raws))")
        with w.block("for raw, payload in zip(raws, payloads):"):
            w.line("body.append(CODEC_ID)")
            w.line("_write_varint(body, len(raw))")
            w.line("_write_varint(body, len(payload))")
        with w.block("for payload in payloads:"):
            w.line("body += payload")
        w.line('out = bytearray(b"TCCK")')
        w.line("_write_varint(out, len(body) + 4)")
        w.line("out += body")
        w.line('out += _crc32c(bytes(out)).to_bytes(4, "little")')
        w.line("return bytes(out)")
    w.line()
    with w.block("class _StreamWriter:"):
        w.line('"""Incremental v4 stream writer (see ``open_stream``)."""')
        w.line()
        with w.block("def __init__(self, sink, chunk_records, fsync, backend):"):
            w.line("self._file = open(sink, \"wb\") if isinstance(sink, str) else sink")
            w.line("self._owns = isinstance(sink, str)")
            w.line("self._chunk_records = chunk_records")
            w.line("self._fsync = fsync")
            w.line("self._kernel = _resolve_backend(backend)")
            w.line("self._head = bytearray()")
            w.line("self._body = bytearray()")
            w.line("self._prologue_done = False")
            w.line("self._index = 0")
            w.line("self._records = 0")
            w.line("self._durable = 0")
            w.line("self._unflushed = 0")
            w.line("self._table = []")
            w.line("self._closed = False")
            with w.block("if not HEADER_BYTES:"):
                w.line("self._write_prologue()")
        w.line()
        with w.block("def _write_prologue(self):"):
            w.line('out = bytearray(b"TCGN")')
            w.line("out.append(4)")
            w.line('out += FINGERPRINT.to_bytes(8, "little")')
            w.line("_write_varint(out, self._chunk_records)")
            if has_header:
                w.line("payload = _post_compress(bytes(self._head))")
                w.line("_write_varint(out, 1)")
                w.line("out.append(CODEC_ID)")
                w.line("_write_varint(out, HEADER_BYTES)")
                w.line("_write_varint(out, len(payload))")
                w.line('out += _crc32c(bytes(out)).to_bytes(4, "little")')
                w.line("out += payload")
                w.line('out += _crc32c(payload).to_bytes(4, "little")')
            else:
                w.line("_write_varint(out, 0)")
                w.line('out += _crc32c(bytes(out)).to_bytes(4, "little")')
            w.line("self._file.write(out)")
            w.line("self._unflushed += len(out)")
            w.line("self._prologue_done = True")
        w.line()
        with w.block("def watermark(self):"):
            w.line('"""(records, bytes, chunks) made durable by the last flush."""')
            w.line("return self._records, self._durable, self._index")
        w.line()
        with w.block("def pending_records(self):"):
            w.line("return len(self._body) // RECORD_BYTES")
        w.line()
        with w.block("def append(self, data):"):
            w.line('"""Buffer raw trace bytes; flushes when the chunk cap fills."""')
            with w.block("if self._closed:"):
                w.line('raise ValueError("stream is closed")')
            w.line("view = memoryview(data)")
            with w.block("if len(self._head) < HEADER_BYTES:"):
                w.line("take = min(HEADER_BYTES - len(self._head), len(view))")
                w.line("self._head += view[:take]")
                w.line("view = view[take:]")
                with w.block(
                    "if len(self._head) == HEADER_BYTES and not self._prologue_done:"
                ):
                    w.line("self._write_prologue()")
            with w.block("if view:"):
                w.line("self._body += view")
            with w.block("if self.pending_records() >= self._chunk_records:"):
                w.line("self.flush()")
            w.line("return self.watermark()")
        w.line()
        with w.block("def flush(self):"):
            w.line('"""Make every complete pending record durable; partials wait."""')
            with w.block("if self._closed:"):
                w.line('raise ValueError("stream is closed")')
            with w.block("while len(self._body) >= RECORD_BYTES:"):
                w.line(
                    "count = min(len(self._body) // RECORD_BYTES, self._chunk_records)"
                )
                w.line("take = count * RECORD_BYTES")
                w.line("raw = bytes(self._body[:take])")
                w.line("del self._body[:take]")
                with w.block("if self._kernel is not None:"):
                    w.line("streams, _usage = self._kernel.compress_chunk(raw)")
                with w.block("else:"):
                    w.line("streams, _usage = _compress_chunk(raw, 0, count)")
                w.line("frame = _encode_v4_frame(self._index, count, streams)")
                w.line("self._file.write(frame)")
                w.line("self._unflushed += len(frame)")
                w.line("self._table.append((count, len(frame)))")
                w.line("self._index += 1")
                w.line("self._records += count")
            w.line("self._make_durable()")
            w.line("return self.watermark()")
        w.line()
        with w.block("def close(self):"):
            w.line('"""Flush, append the seek trailer, and finish the stream."""')
            with w.block("if self._closed:"):
                w.line('raise ValueError("stream is closed")')
            with w.block("if len(self._head) < HEADER_BYTES:"):
                w.line('raise ValueError("cannot close: trace header incomplete")')
            w.line("self.flush()")
            with w.block("if self._body:"):
                w.line('raise ValueError("cannot close: trailing partial record")')
            w.line('out = bytearray(b"TCST")')
            w.line("_write_varint(out, self._records)")
            w.line("_write_varint(out, len(self._table))")
            with w.block("for count, frame_bytes in self._table:"):
                w.line("_write_varint(out, count)")
                w.line("_write_varint(out, frame_bytes)")
            w.line('out += _crc32c(bytes(out)).to_bytes(4, "little")')
            w.line("self._file.write(out)")
            w.line("self._unflushed += len(out)")
            w.line("self._make_durable()")
            w.line("self._closed = True")
            with w.block("if self._owns:"):
                w.line("self._file.close()")
            w.line("return self.watermark()")
        w.line()
        with w.block("def _make_durable(self):"):
            with w.block("if self._unflushed:"):
                w.line("self._durable += self._unflushed")
                w.line("self._unflushed = 0")
            w.line("self._file.flush()")
            with w.block("if self._fsync:"):
                with w.block("try:"):
                    w.line("fd = self._file.fileno()")
                with w.block("except (AttributeError, OSError, ValueError):"):
                    w.line("return")
                w.line("os.fsync(fd)")
    w.line()
    with w.block(
        'def open_stream(sink, chunk_records=None, fsync=False, backend="auto"):'
    ):
        w.line('"""Open an append-only v4 streaming compressor writing to ``sink``.')
        w.line("")
        w.line("    ``sink`` is a path or a writable binary file object.  Feed raw")
        w.line("    trace bytes (header first) with ``append``; every ``flush``")
        w.line("    emits durable self-framed chunks and returns the watermark")
        w.line("    (records, bytes, chunks) that will survive a crash.  ``close``")
        w.line("    appends the seek trailer.  Chunks hold at most ``chunk_records``")
        w.line("    records (predictor state resets per chunk, as in v3).")
        w.line('    """')
        with w.block('if chunk_records in (None, 0, "auto"):'):
            w.line("chunk_records = DEFAULT_CHUNK_RECORDS")
        with w.block("if chunk_records < 1:"):
            w.line('raise ValueError("chunk_records must be positive")')
        w.line("return _StreamWriter(sink, chunk_records, fsync, backend)")
    w.line()


def _emit_decompress(
    w: CodeWriter,
    model: CompressorModel,
    plans: list[FieldPlan],
    order: list[FieldPlan],
    facts_by_field=None,
) -> None:
    spec = model.spec
    pc_f = model.pc_field.index
    with w.block("def _decompress_chunk(count, streams, out):"):
        w.line('"""Decode one chunk (fresh tables) and append its records to ``out``."""')
        cursor = 0
        for plan in plans:
            f = plan.layout.index
            w.line(f"codes{f} = streams[{cursor}]")
            w.line(f"values{f} = streams[{cursor + 1}]")
            cursor += 2
        for plan in plans:
            f = plan.layout.index
            cb = plan.layout.code_bytes
            with w.block(f"if len(codes{f}) != count * {cb}:"):
                w.line(f'raise ValueError("field {f} code stream length mismatch")')
            w.line(f"vpos{f} = 0")
        _emit_table_unpack(w)
        with w.block("for record in range(count):"):
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _FieldEmitter(
                    plan,
                    model.options.smart_update,
                    None if facts_by_field is None else facts_by_field.get(f),
                )
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                cb = layout.code_bytes
                if cb == 1:
                    w.line(f"code = codes{f}[record]")
                else:
                    w.line(
                        f'code = int.from_bytes(codes{f}[record * {cb} : record * {cb} + {cb}], "little")'
                    )
                for code, pvar in enumerate(vars.predictions):
                    keyword = "if" if code == 0 else "elif"
                    with w.block(f"{keyword} code == {code}:"):
                        w.line(f"{vars.value} = {pvar}")
                with w.block(f"elif code == {layout.miss_code}:"):
                    vb = layout.value_bytes
                    w.line(
                        f'{vars.value} = int.from_bytes(values{f}[vpos{f} : vpos{f} + {vb}], "little") & {hex(layout.mask)}'
                    )
                    w.line(f"vpos{f} += {vb}")
                with w.block("else:"):
                    w.line(f'raise ValueError("field {f}: invalid code")')
                emitter.emit_commit(w, vars)
            pack_args = ", ".join(f"value{plan.layout.index}" for plan in plans)
            w.line(f"out += _RECORD.pack({pack_args})")
        for plan in plans:
            f = plan.layout.index
            with w.block(f"if vpos{f} != len(values{f}):"):
                w.line(f'raise ValueError("field {f} value stream not fully consumed")')
    w.line()
    with w.block('def decompress(blob, workers=1, salvage=False, backend="auto"):'):
        w.line('"""Rebuild the exact original trace bytes from a blob (v1-v4).')
        w.line("")
        w.line("    In strict mode (the default) any corruption raises ValueError.")
        w.line("    With ``salvage=True`` damaged chunks of a v3/v4 container are")
        w.line("    skipped instead: the return value holds only the surviving")
        w.line("    records and ``salvage_report()`` describes what was lost.")
        w.line('    ``backend`` works as in :func:`compress`; salvage decode is')
        w.line("    always pure Python (damage diagnosis needs the interpreter).")
        w.line('    """')
        w.line("global _last_lost")
        w.line("_last_lost = []")
        with w.block('if backend not in ("auto", "python", "numpy", "native"):'):
            w.line('raise ValueError("backend must be auto, python, numpy, or native; got %r" % (backend,))')
        if spec.header_bits:
            unpack = "record_count, head_pair, chunks, lost"
        else:
            unpack = "record_count, chunks, lost"
        with w.block("if not salvage:"):
            w.line(f"{unpack} = _decode_container(blob)")
            w.line("pairs = []")
            if spec.header_bits:
                w.line("pairs.append(head_pair)")
            with w.block("for _index, _count, cpairs in chunks:"):
                w.line("pairs.extend(cpairs)")
            w.line("datas = _decompress_streams(pairs, workers)")
            if spec.header_bits:
                with w.block("if len(datas[0]) != HEADER_BYTES:"):
                    w.line('raise ValueError("bad header stream length")')
                w.line("out = bytearray(datas[0])")
                w.line("base = 1")
            else:
                w.line("out = bytearray()")
                w.line("base = 0")
            w.line("kernel = _resolve_backend(backend)")
            w.line("items = []")
            with w.block("for _index, count, cpairs in chunks:"):
                w.line("streams = datas[base : base + len(cpairs)]")
                with w.block("if kernel is not None:"):
                    w.line("items.append((count, streams[0::2], streams[1::2]))")
                with w.block("else:"):
                    w.line("_decompress_chunk(count, streams, out)")
                w.line("base += len(cpairs)")
            with w.block("if kernel is not None:"):
                with w.block("try:"):
                    with w.block('if hasattr(kernel, "decompress_batch"):'):
                        with w.block("for i in range(0, len(items), _BATCH):"):
                            with w.block(
                                "for piece in kernel.decompress_batch("
                                "items[i : i + _BATCH]):"
                            ):
                                w.line("out += piece")
                    with w.block("else:"):
                        with w.block("for item in items:"):
                            w.line("out += kernel.decompress_chunk(*item)")
                with w.block("except Exception as exc:"):
                    w.line("raise ValueError(str(exc))")
            w.line("return bytes(out)")
        with w.block("try:"):
            w.line(f"{unpack} = _decode_container(blob, salvage=True)")
        with w.block("except ValueError as exc:"):
            w.line("# A v3/v4 fingerprint mismatch behind a valid checksum means the")
            w.line("# wrong decompressor, not corruption: salvage must not mask it.")
            w.line("# (v1/v2 have no checksum, so there a bad fingerprint may just")
            w.line("# be a flipped bit and is reported as damage instead.)")
            with w.block(
                'if len(blob) > 4 and blob[4] in (3, 4) and '
                '"does not match this specification" in str(exc):'
            ):
                w.line("raise")
            w.line('_last_lost = [(-2, "container unreadable: %s" % exc)]')
            if spec.header_bits:
                w.line('return b"\\x00" * HEADER_BYTES')
            else:
                w.line('return b""')
        w.line("lost = list(lost)")
        if spec.header_bits:
            w.line('out = bytearray(b"\\x00" * HEADER_BYTES)')
            with w.block("if head_pair is not None:"):
                with w.block("try:"):
                    w.line("head = _post_decompress_bounded(head_pair[0], head_pair[1])")
                    with w.block("if len(head) != HEADER_BYTES:"):
                        w.line('raise ValueError("bad header stream length")')
                    w.line("out = bytearray(head)")
                with w.block("except Exception as exc:"):
                    w.line('lost.append((-1, "header stream damaged: %s" % exc))')
        else:
            w.line("out = bytearray()")
        with w.block("for index, count, cpairs in chunks:"):
            with w.block("try:"):
                w.line("datas = _decompress_streams(cpairs, 1)")
                w.line("piece = bytearray()")
                w.line("_decompress_chunk(count, datas, piece)")
                w.line("out += piece")
            with w.block("except Exception as exc:"):
                w.line('lost.append((index, "chunk decode failed: %s" % exc))')
        w.line("lost.sort()")
        w.line("_last_lost = lost")
        w.line("return bytes(out)")
    w.line()
    with w.block("def salvage_report():"):
        w.line('"""What the most recent ``decompress(salvage=True)`` call lost."""')
        with w.block("if not _last_lost:"):
            w.line('return "salvage: no damage detected"')
        w.line('lines = ["salvage: %d problem(s)" % len(_last_lost)]')
        with w.block("for index, reason in _last_lost:"):
            with w.block("if index == -2:"):
                w.line('label = "container"')
            with w.block("elif index == -1:"):
                w.line('label = "header"')
            with w.block("else:"):
                w.line('label = "chunk %d" % index')
            w.line('lines.append("  %s: %s" % (label, reason))')
        w.line('return "\\n".join(lines)')
    w.line()


def _emit_usage_report(w: CodeWriter, model: CompressorModel, plans: list[FieldPlan]) -> None:
    with w.block("def usage_report():"):
        w.line('"""Predictor usage feedback from the most recent compression."""')
        with w.block("if _last_usage is None:"):
            w.line('return "no compression has run yet"')
        w.line('lines = ["predictor usage:"]')
        for position, plan in enumerate(plans):
            layout = plan.layout
            labels = []
            for resolved in layout.predictors:
                labels += [
                    f"{resolved.spec} slot {slot}" for slot in range(resolved.spec.depth)
                ]
            labels.append("miss")
            w.line(f"counts = _last_usage[{position}]")
            w.line("total = sum(counts) or 1")
            w.line(
                f'lines.append("  field {layout.index} '
                f'({layout.width_bits}-bit{", PC" if layout.is_pc else ""}):")'
            )
            w.line(f"names = {labels!r}")
            with w.block("for code, (name, count) in enumerate(zip(names, counts)):"):
                w.line(
                    'lines.append("    code %2d %-14s %10d (%.1f%%)" % (code, name, count, 100.0 * count / total))'
                )
        w.line('return "\\n".join(lines)')
    w.line()


def _emit_main(w: CodeWriter) -> None:
    with w.block("def _atomic_write(path, data):"):
        w.line('"""Write ``data`` to ``path`` via a same-directory temp + rename."""')
        w.line("directory = os.path.dirname(os.path.abspath(path))")
        w.line('fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tcgen-")')
        with w.block("try:"):
            with w.block('with os.fdopen(fd, "wb") as handle:'):
                w.line("handle.write(data)")
                w.line("handle.flush()")
                w.line("os.fsync(handle.fileno())")
            w.line("umask = os.umask(0)")
            w.line("os.umask(umask)")
            w.line("os.chmod(tmp, 0o666 & ~umask)")
            w.line("os.replace(tmp, path)")
        with w.block("except BaseException:"):
            with w.block("try:"):
                w.line("os.unlink(tmp)")
            with w.block("except OSError:"):
                w.line("pass")
            w.line("raise")
    w.line()
    with w.block("def _parse_args(argv):"):
        w.line('"""Parse (decode, workers, chunk_records, salvage, output, backend)."""')
        w.line("decode = False")
        w.line("salvage = False")
        w.line("workers = 1")
        w.line("chunk_records = None")
        w.line("output = None")
        w.line('backend = "auto"')
        w.line("position = 0")
        with w.block("while position < len(argv):"):
            w.line("option = argv[position]")
            w.line("position += 1")
            with w.block('if option == "--version":'):
                w.line('print("tcgen-generated %s" % GENERATOR_VERSION)')
                w.line("raise SystemExit(0)")
            with w.block('if option == "-d":'):
                w.line("decode = True")
                w.line("continue")
            with w.block('if option == "--salvage":'):
                w.line("salvage = True")
                w.line("continue")
            with w.block('if option == "--strict":'):
                w.line("salvage = False")
                w.line("continue")
            with w.block(
                'for name in ("--workers", "--chunk-records", "-o", "--output", "--backend"):'
            ):
                with w.block("if option == name:"):
                    with w.block("if position >= len(argv):"):
                        w.line('raise SystemExit("%s expects a value" % name)')
                    w.line("option = name + \"=\" + argv[position]")
                    w.line("position += 1")
                with w.block('if option.startswith(name + "="):'):
                    w.line('text = option.split("=", 1)[1]')
                    with w.block('if name == "--workers":'):
                        w.line("workers = int(text)")
                    with w.block('elif name in ("-o", "--output"):'):
                        w.line("output = text")
                    with w.block('elif name == "--backend":'):
                        w.line("backend = text")
                    with w.block("else:"):
                        w.line('chunk_records = "auto" if text == "auto" else int(text)')
                    w.line("break")
            with w.block("else:"):
                w.line('raise SystemExit("unknown option: %s" % option)')
        w.line("return decode, workers, chunk_records, salvage, output, backend")
    w.line()
    with w.block("def main(argv=None):"):
        w.line('"""Filter: compress stdin to stdout; -d decompresses.')
        w.line("")
        w.line("    --workers N parallelizes the post-compression codec stage;")
        w.line("    --chunk-records N (or 'auto') emits a chunked v3 container;")
        w.line("    --salvage skips damaged chunks on decode instead of failing;")
        w.line("    -o FILE writes atomically to FILE instead of stdout;")
        w.line("    --backend auto|python|numpy|native picks the kernel stage.")
        w.line("    Exit status: 0 success, 1 backend unavailable,")
        w.line("    2 corrupt or mismatched input.")
        w.line('    """')
        w.line("argv = sys.argv[1:] if argv is None else argv")
        w.line(
            "decode, workers, chunk_records, salvage, output, backend = _parse_args(argv)"
        )
        w.line("data = sys.stdin.buffer.read()")
        with w.block("try:"):
            with w.block("if decode:"):
                w.line(
                    "result = decompress(data, workers=workers, salvage=salvage, "
                    "backend=backend)"
                )
            with w.block("else:"):
                w.line(
                    "result = compress(data, chunk_records=chunk_records, "
                    "workers=workers, backend=backend)"
                )
        with w.block("except RuntimeError as exc:"):
            w.line('print("error: %s" % exc, file=sys.stderr)')
            w.line("return 1")
        with w.block("except ValueError as exc:"):
            w.line('print("error: %s" % exc, file=sys.stderr)')
            w.line("return 2")
        with w.block("if output is not None:"):
            w.line("_atomic_write(output, result)")
        with w.block("else:"):
            w.line("sys.stdout.buffer.write(result)")
        with w.block("if decode and salvage and _last_lost:"):
            w.line("print(salvage_report(), file=sys.stderr)")
        with w.block("if not decode:"):
            w.line("print(usage_report(), file=sys.stderr)")
        w.line("return 0")
    w.line()
    w.line()
    with w.block('if __name__ == "__main__":'):
        w.line("raise SystemExit(main())")
