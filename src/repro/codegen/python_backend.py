"""Python code generation backend.

Emits a complete, self-contained Python module implementing the compressor
described by a :class:`~repro.model.CompressorModel`.  The module depends
only on the standard library (``array``, ``struct``, and the chosen
post-compression codec) and exposes::

    compress(raw: bytes) -> bytes
    decompress(blob: bytes) -> bytes
    usage_report() -> str        # predictor feedback after a compression
    main(argv)                   # stdin -> stdout filter, '-d' decompresses

The emitted code is specialized exactly the way the paper describes for C:
prediction and update loops are fully unrolled, constants (masks, shifts,
table bases) are inlined, power-of-two modulo operations become bit-ands,
dead code for unused features is never emitted, and all names are
meaningful.  Containers produced by the generated module are byte-identical
to the interpreted :class:`~repro.runtime.TraceEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.plan import ChainStruct, FieldPlan, LastValueStruct, plan_field
from repro.codegen.writer import CodeWriter
from repro.model.layout import CompressorModel
from repro.postcompress import codec_by_name
from repro.predictors.hashing import HashParams
from repro.spec.ast import PredictorKind
from repro.spec.canonical import format_spec

_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}

_STRUCT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _fold_expr(var: str, width_bits: int, params: HashParams) -> str:
    """Expression folding ``var`` into ``params.fold_bits`` bits."""
    fb = params.fold_bits
    if width_bits <= fb:
        return var
    parts = [var]
    shift = fb
    while shift < width_bits:
        parts.append(f"({var} >> {shift})")
        shift += fb
    return f"({' ^ '.join(parts)}) & {hex((1 << fb) - 1)}"


@dataclass
class _FieldVars:
    """Names of the per-record locals emitted for one field."""

    value: str
    line: str | None  # None when L1 = 1 (constant line 0)
    lv_base: str | None
    last_first: str | None  # local holding the pre-update last value
    chain_bases: dict[str, str]  # chain name -> base variable (or constant)
    index_vars: dict[int, str]  # predictor slot -> L2 index variable
    l2_bases: dict[int, str]  # predictor slot -> L2 base expression
    predictions: list[str]  # one variable per identification code


class _FieldEmitter:
    """Emits the begin/commit logic for one field into a CodeWriter."""

    def __init__(self, plan: FieldPlan, policy_smart: bool) -> None:
        self.plan = plan
        self.layout = plan.layout
        self.smart = policy_smart
        self.f = self.layout.index

    # -- small expression helpers -----------------------------------------

    def _base_expr(self, line_var: str | None, span: int) -> str | None:
        """Base of the selected line in a flat ``lines x span`` table."""
        if line_var is None:
            return None  # line 0: offsets are absolute
        if span == 1:
            return line_var
        return f"{line_var} * {span}"

    def _slot(self, base: str | None, offset: int) -> str:
        if base is None:
            return str(offset)
        if offset == 0:
            return base
        return f"{base} + {offset}"

    # -- begin phase -------------------------------------------------------

    def emit_begin(self, w: CodeWriter, pc_var: str) -> _FieldVars:
        """Emit index computation and prediction loads; return the vars."""
        layout = self.layout
        f = self.f
        w.line(f"# field {f}: compute table indices and predictions")
        line_var = None
        if layout.l1_lines > 1:
            line_var = f"line{f}"
            w.line(f"{line_var} = {pc_var} & {layout.l1_lines - 1}")

        vars = _FieldVars(
            value=f"value{f}",
            line=line_var,
            lv_base=None,
            last_first=None,
            chain_bases={},
            index_vars={},
            l2_bases={},
            predictions=[],
        )

        # Last-value base and the most recent value (shared or private).
        lasts = self.plan.lasts
        if lasts:
            first = lasts[0]
            base = self._base_expr(line_var, first.depth)
            if base is not None and first.depth > 1:
                vars.lv_base = f"lvbase{f}"
                w.line(f"{vars.lv_base} = {base}")
            elif base is not None:
                vars.lv_base = base
            if layout.needs_stride:
                vars.last_first = f"last{f}"
                w.line(
                    f"{vars.last_first} = {first.name}[{self._slot(vars.lv_base, 0)}]"
                )

        # Chain bases and per-predictor L2 indices.
        for chain in self.plan.chains:
            base = self._base_expr(line_var, chain.span)
            if base is not None and ("*" in base or chain.span > 1):
                name = f"{chain.name}_base"
                w.line(f"{name} = {base}")
                vars.chain_bases[chain.name] = name
            else:
                vars.chain_bases[chain.name] = base  # may be None
        for pred in self.plan.predictors:
            if pred.chain is None:
                continue
            index_var = f"index{f}_{pred.slot}"
            vars.index_vars[pred.slot] = index_var
            base = vars.chain_bases[pred.chain.name]
            if pred.chain.fast:
                w.line(f"{index_var} = {pred.chain.name}[{self._slot(base, pred.order - 1)}]")
            else:
                self._emit_scratch_hash(w, pred, base, index_var)

        # Prediction variables, one per identification code.
        code = 0
        for pred in self.plan.predictors:
            if pred.kind is PredictorKind.LV:
                lv = pred.last
                base = vars.lv_base
                # Private LV tables have their own depth; recompute the base.
                if lv is not lasts[0]:
                    base = self._base_expr(line_var, lv.depth)
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(f"{pvar} = {lv.name}[{self._slot(base, slot)}]")
                    vars.predictions.append(pvar)
                    code += 1
                continue
            l2_base = f"l2base{f}_{pred.slot}"
            index_var = vars.index_vars[pred.slot]
            if pred.depth > 1:
                w.line(f"{l2_base} = {index_var} * {pred.depth}")
            else:
                l2_base = index_var
            vars.l2_bases[pred.slot] = l2_base
            if pred.kind is PredictorKind.FCM:
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(f"{pvar} = {pred.l2.name}[{self._slot(l2_base, slot)}]")
                    vars.predictions.append(pvar)
                    code += 1
            else:  # DFCM: last + stride, masked to the field width
                last_var = vars.last_first
                if last_var is None:
                    raise AssertionError("DFCM without a last value")
                # Unshared DFCMs read their private copy (identical content).
                if pred.last is not lasts[0]:
                    private = self._base_expr(line_var, 1)
                    last_var = f"last{f}_{pred.slot}"
                    w.line(f"{last_var} = {pred.last.name}[{self._slot(private, 0)}]")
                for slot in range(pred.depth):
                    pvar = f"pred{f}_{code}"
                    w.line(
                        f"{pvar} = ({last_var} + "
                        f"{pred.l2.name}[{self._slot(l2_base, slot)}]) & {hex(layout.mask)}"
                    )
                    vars.predictions.append(pvar)
                    code += 1
        return vars

    def _emit_scratch_hash(self, w: CodeWriter, pred, base: str | None, out: str) -> None:
        """Unrolled from-scratch hash over the raw history (slow-hash mode)."""
        chain = pred.chain
        params = chain.params
        w.line(f"# order-{pred.order} hash of {chain.name} computed from scratch")
        hash_var = f"scratch{self.f}_{pred.slot}"
        for step in range(1, pred.order + 1):
            position = pred.order - step
            slot = self._slot(base, position)
            fold = _fold_expr(f"{chain.name}[{slot}]", self.layout.width_bits, params)
            mask = hex(params.order_mask(step))
            if step == 1:
                w.line(f"{hash_var} = ({fold}) & {mask}")
            else:
                w.line(f"{hash_var} = (({hash_var} << {params.shift}) ^ ({fold})) & {mask}")
        w.line(f"{out} = {hash_var}")

    # -- commit phase --------------------------------------------------------

    def emit_commit(self, w: CodeWriter, vars: _FieldVars) -> None:
        """Emit all table updates for the true value ``vars.value``."""
        layout = self.layout
        f = self.f
        value = vars.value
        w.line(f"# field {f}: update predictor tables")
        stride_var = None
        if layout.needs_stride:
            stride_var = f"stride{f}"
            w.line(f"{stride_var} = ({value} - {vars.last_first}) & {hex(layout.mask)}")

        # Second-level tables, in predictor order (mirrors the kernel).
        for pred in self.plan.predictors:
            if pred.l2 is None:
                continue
            update_value = value if pred.kind is PredictorKind.FCM else stride_var
            self._emit_line_update(
                w,
                table=pred.l2.name,
                base=vars.l2_bases[pred.slot],
                depth=pred.depth,
                value=update_value,
                smart=self.smart,
            )

        # First-level chains (order across distinct structures is free).
        for chain in self.plan.chains:
            feed = value if chain.kind is PredictorKind.FCM else stride_var
            base = vars.chain_bases[chain.name]
            if chain.fast:
                self._emit_chain_absorb(w, chain, base, feed)
            else:
                self._emit_history_shift(w, chain, base, feed)

        # Last-value tables.
        for last in self.plan.lasts:
            base = vars.lv_base
            if last is not self.plan.lasts[0] or last.depth != self.plan.lasts[0].depth:
                base = self._base_expr(
                    vars.line, last.depth
                )  # private tables have their own geometry
            self._emit_line_update(
                w,
                table=last.name,
                base=base,
                depth=last.depth,
                value=value,
                smart=self.smart,
            )

    def _emit_line_update(
        self, w: CodeWriter, table: str, base: str | None, depth: int, value: str, smart: bool
    ) -> None:
        first = f"{table}[{self._slot(base, 0)}]"
        body = CodeWriter()
        for slot in range(depth - 1, 0, -1):
            w_slot = f"{table}[{self._slot(base, slot)}]"
            r_slot = f"{table}[{self._slot(base, slot - 1)}]"
            body.line(f"{w_slot} = {r_slot}")
        body.line(f"{first} = {value}")
        if smart:
            with w.block(f"if {first} != {value}:"):
                for line in body.getvalue().rstrip("\n").split("\n"):
                    w.line(line)
        else:
            for line in body.getvalue().rstrip("\n").split("\n"):
                w.line(line)

    def _emit_chain_absorb(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        params = chain.params
        f = self.f
        fold_var = f"fold_{chain.name}"
        w.line(f"{fold_var} = {_fold_expr(feed, self.layout.width_bits, params)}")
        span = chain.span
        temps = []
        for level in range(span, 1, -1):
            temp = f"hash_{chain.name}_{level}"
            prev = f"{chain.name}[{self._slot(base, level - 2)}]"
            w.line(
                f"{temp} = (({prev} << {params.shift}) ^ {fold_var}) "
                f"& {hex(params.order_mask(level))}"
            )
            temps.append((level, temp))
        for level, temp in temps:
            w.line(f"{chain.name}[{self._slot(base, level - 1)}] = {temp}")
        w.line(
            f"{chain.name}[{self._slot(base, 0)}] = {fold_var} & {hex(params.order_mask(1))}"
        )

    def _emit_history_shift(
        self, w: CodeWriter, chain: ChainStruct, base: str | None, feed: str
    ) -> None:
        for slot in range(chain.span - 1, 0, -1):
            w.line(
                f"{chain.name}[{self._slot(base, slot)}] = "
                f"{chain.name}[{self._slot(base, slot - 1)}]"
            )
        w.line(f"{chain.name}[{self._slot(base, 0)}] = {feed}")


def _record_struct_format(model: CompressorModel) -> str:
    return "<" + "".join(_STRUCT_CODES[f.spec.bytes] for f in model.fields)


def generate_python(model: CompressorModel, codec: str = "bzip2") -> str:
    """Generate the source text of a specialized Python compressor module."""
    codec_obj = codec_by_name(codec)
    plans = [plan_field(layout, model.options) for layout in model.fields]
    plan_by_index = {plan.layout.index: plan for plan in plans}
    order = [plan_by_index[layout.index] for layout in model.process_order]
    spec = model.spec

    w = CodeWriter()
    w.line('"""Trace compressor generated by TCgen (Python backend).')
    w.line("")
    w.line("Trace specification (canonical form):")
    w.line("")
    comments = {
        layout.index: (
            f"field {layout.index}: {layout.total_predictions} predictions, "
            f"{layout.table_bytes(model.options.shared_tables)} table bytes"
        )
        for layout in model.fields
    }
    for line in format_spec(spec, comments).rstrip("\n").split("\n"):
        w.line("    " + line if line else "")
    w.line('"""')
    w.line()
    w.line("import struct")
    w.line("import sys")
    w.line("from array import array")
    w.line()
    if codec_obj.name == "bzip2":
        w.line("import bz2")
        compress_call = "bz2.compress(data, 9)"
        decompress_call = "bz2.decompress(data)"
    elif codec_obj.name == "zlib":
        w.line("import zlib")
        compress_call = "zlib.compress(data, 9)"
        decompress_call = "zlib.decompress(data)"
    elif codec_obj.name == "lzma":
        w.line("import lzma")
        compress_call = "lzma.compress(data)"
        decompress_call = "lzma.decompress(data)"
    else:
        compress_call = "data"
        decompress_call = "data"
    w.line()
    w.line(f"FINGERPRINT = {spec.fingerprint():#018x}")
    w.line(f"CODEC_ID = {codec_obj.codec_id}")
    w.line(f"HEADER_BYTES = {spec.header_bytes}")
    w.line(f"RECORD_BYTES = {spec.record_bytes}")
    w.line(f'_RECORD = struct.Struct("{_record_struct_format(model)}")')
    w.line()
    w.line("_last_usage = None")
    w.line()
    with w.block("def _post_compress(data):"):
        w.line(f"return {compress_call}")
    w.line()
    with w.block("def _post_decompress(data):"):
        w.line(f"return {decompress_call}")
    w.line()

    _emit_container_helpers(w)
    _emit_fresh_tables(w, plans)
    _emit_compress(w, model, plans, order)
    _emit_decompress(w, model, plans, order)
    _emit_usage_report(w, model, plans)
    _emit_main(w)
    return w.getvalue()


def _emit_container_helpers(w: CodeWriter) -> None:
    with w.block("def _write_varint(out, value):"):
        with w.block("while True:"):
            w.line("byte = value & 0x7F")
            w.line("value >>= 7")
            with w.block("if value:"):
                w.line("out.append(byte | 0x80)")
            with w.block("else:"):
                w.line("out.append(byte)")
                w.line("return")
    w.line()
    with w.block("def _read_varint(blob, pos):"):
        w.line("result = 0")
        w.line("shift = 0")
        with w.block("while True:"):
            with w.block("if pos >= len(blob):"):
                w.line('raise ValueError("truncated container")')
            w.line("byte = blob[pos]")
            w.line("pos += 1")
            w.line("result |= (byte & 0x7F) << shift")
            with w.block("if not byte & 0x80:"):
                w.line("return result, pos")
            w.line("shift += 7")
            with w.block("if shift > 70:"):
                w.line('raise ValueError("varint longer than 10 bytes")')
    w.line()
    with w.block("def _encode_container(record_count, streams):"):
        w.line('out = bytearray(b"TCGN")')
        w.line("out.append(1)")
        w.line('out += FINGERPRINT.to_bytes(8, "little")')
        w.line("_write_varint(out, record_count)")
        w.line("_write_varint(out, len(streams))")
        w.line("payloads = []")
        with w.block("for raw in streams:"):
            w.line("payload = _post_compress(bytes(raw))")
            w.line("payloads.append(payload)")
            w.line("out.append(CODEC_ID)")
            w.line("_write_varint(out, len(raw))")
            w.line("_write_varint(out, len(payload))")
        with w.block("for payload in payloads:"):
            w.line("out += payload")
        w.line("return bytes(out)")
    w.line()
    with w.block("def _decode_container(blob, expected_streams):"):
        with w.block('if len(blob) < 13 or blob[:4] != b"TCGN" or blob[4] != 1:'):
            w.line('raise ValueError("not a TCgen container")')
        w.line('fingerprint = int.from_bytes(blob[5:13], "little")')
        with w.block("if fingerprint != FINGERPRINT:"):
            w.line('raise ValueError("compressed trace does not match this specification")')
        w.line("record_count, pos = _read_varint(blob, 13)")
        w.line("stream_count, pos = _read_varint(blob, pos)")
        with w.block("if stream_count != expected_streams:"):
            w.line('raise ValueError("unexpected stream count")')
        w.line("metas = []")
        with w.block("for _ in range(stream_count):"):
            with w.block("if pos >= len(blob):"):
                w.line('raise ValueError("truncated container")')
            w.line("codec_id = blob[pos]")
            w.line("pos += 1")
            w.line("raw_length, pos = _read_varint(blob, pos)")
            w.line("stored, pos = _read_varint(blob, pos)")
            with w.block("if codec_id != CODEC_ID:"):
                w.line('raise ValueError("unexpected stream codec")')
            w.line("metas.append((raw_length, stored))")
        w.line("streams = []")
        with w.block("for raw_length, stored in metas:"):
            with w.block("if pos + stored > len(blob):"):
                w.line('raise ValueError("truncated stream payload")')
            w.line("data = _post_decompress(blob[pos : pos + stored])")
            with w.block("if len(data) != raw_length:"):
                w.line('raise ValueError("stream length mismatch")')
            w.line("streams.append(data)")
            w.line("pos += stored")
        with w.block("if pos != len(blob):"):
            w.line('raise ValueError("trailing bytes after last stream")')
        w.line("return record_count, streams")
    w.line()


def _emit_fresh_tables(w: CodeWriter, plans: list[FieldPlan]) -> None:
    names: list[str] = []
    with w.block("def _fresh_tables():"):
        w.line('"""Allocate zeroed predictor tables (one call per run)."""')
        for plan in plans:
            for last in plan.lasts:
                code = _TYPECODES[last.elem_bytes]
                size = last.lines * last.depth
                w.line(
                    f'{last.name} = array("{code}", bytes({last.elem_bytes} * {size}))'
                )
                names.append(last.name)
            for chain in plan.chains:
                code = _TYPECODES[chain.elem_bytes]
                size = chain.lines * chain.span
                w.line(
                    f'{chain.name} = array("{code}", bytes({chain.elem_bytes} * {size}))'
                )
                names.append(chain.name)
            for l2 in plan.l2s:
                code = _TYPECODES[l2.elem_bytes]
                size = l2.lines * l2.depth
                w.line(f'{l2.name} = array("{code}", bytes({l2.elem_bytes} * {size}))')
                names.append(l2.name)
        w.line("return (")
        w.indent()
        for name in names:
            w.line(f"{name},")
        w.dedent()
        w.line(")")
    w.line()
    # Remember the tuple order for the unpacking emitted in compress/decompress.
    w._table_names = names  # type: ignore[attr-defined]


def _emit_table_unpack(w: CodeWriter) -> None:
    names = w._table_names  # type: ignore[attr-defined]
    w.line("(")
    w.indent()
    for name in names:
        w.line(f"{name},")
    w.dedent()
    w.line(") = _fresh_tables()")


def _emit_compress(
    w: CodeWriter, model: CompressorModel, plans: list[FieldPlan], order: list[FieldPlan]
) -> None:
    spec = model.spec
    with w.block("def compress(raw):"):
        w.line('"""Compress raw trace bytes into a container blob."""')
        w.line("global _last_usage")
        with w.block("if (len(raw) - HEADER_BYTES) % RECORD_BYTES:"):
            w.line('raise ValueError("trace does not frame into records")')
        w.line("record_count = (len(raw) - HEADER_BYTES) // RECORD_BYTES")
        _emit_table_unpack(w)
        for plan in plans:
            f = plan.layout.index
            w.line(f"codes{f} = bytearray()")
            w.line(f"values{f} = bytearray()")
            w.line(f"usage{f} = [0] * {plan.layout.total_predictions + 1}")
        w.line("pos = HEADER_BYTES")
        pc_f = model.pc_field.index
        with w.block("for _ in range(record_count):"):
            unpack_targets = ", ".join(f"value{plan.layout.index}" for plan in plans)
            w.line(f"{unpack_targets}{',' if len(plans) == 1 else ''} = _RECORD.unpack_from(raw, pos)")
            w.line("pos += RECORD_BYTES")
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _FieldEmitter(plan, model.options.smart_update)
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                value = vars.value
                w.line(f"# field {f}: match the value against the predictions")
                for code, pvar in enumerate(vars.predictions):
                    keyword = "if" if code == 0 else "elif"
                    with w.block(f"{keyword} {value} == {pvar}:"):
                        w.line(f"code = {code}")
                with w.block("else:"):
                    w.line(f"code = {layout.miss_code}")
                    w.line(f'values{f} += {value}.to_bytes({layout.value_bytes}, "little")')
                if layout.code_bytes == 1:
                    w.line(f"codes{f}.append(code)")
                else:
                    w.line(f'codes{f} += code.to_bytes({layout.code_bytes}, "little")')
                w.line(f"usage{f}[code] += 1")
                emitter.emit_commit(w, vars)
        w.line(f"_last_usage = [{', '.join(f'usage{p.layout.index}' for p in plans)}]")
        w.line("streams = []")
        if spec.header_bits:
            w.line("streams.append(raw[:HEADER_BYTES])")
        for plan in plans:
            f = plan.layout.index
            w.line(f"streams.append(codes{f})")
            w.line(f"streams.append(values{f})")
        w.line("return _encode_container(record_count, streams)")
    w.line()


def _emit_decompress(
    w: CodeWriter, model: CompressorModel, plans: list[FieldPlan], order: list[FieldPlan]
) -> None:
    spec = model.spec
    stream_count = model.stream_count
    with w.block("def decompress(blob):"):
        w.line('"""Rebuild the exact original trace bytes from a blob."""')
        w.line(f"record_count, streams = _decode_container(blob, {stream_count})")
        cursor = 0
        if spec.header_bits:
            w.line("header = streams[0]")
            with w.block("if len(header) != HEADER_BYTES:"):
                w.line('raise ValueError("bad header stream length")')
            cursor = 1
        for plan in plans:
            f = plan.layout.index
            w.line(f"codes{f} = streams[{cursor}]")
            w.line(f"values{f} = streams[{cursor + 1}]")
            cursor += 2
        for plan in plans:
            f = plan.layout.index
            cb = plan.layout.code_bytes
            with w.block(f"if len(codes{f}) != record_count * {cb}:"):
                w.line(f'raise ValueError("field {f} code stream length mismatch")')
            w.line(f"vpos{f} = 0")
        _emit_table_unpack(w)
        w.line("out = bytearray()")
        if spec.header_bits:
            w.line("out += header")
        pc_f = model.pc_field.index
        with w.block(f"for record in range(record_count):"):
            for plan in order:
                layout = plan.layout
                f = layout.index
                emitter = _FieldEmitter(plan, model.options.smart_update)
                pc_var = "0" if layout.is_pc else f"value{pc_f}"
                vars = emitter.emit_begin(w, pc_var)
                cb = layout.code_bytes
                if cb == 1:
                    w.line(f"code = codes{f}[record]")
                else:
                    w.line(
                        f'code = int.from_bytes(codes{f}[record * {cb} : record * {cb} + {cb}], "little")'
                    )
                for code, pvar in enumerate(vars.predictions):
                    keyword = "if" if code == 0 else "elif"
                    with w.block(f"{keyword} code == {code}:"):
                        w.line(f"{vars.value} = {pvar}")
                with w.block(f"elif code == {layout.miss_code}:"):
                    vb = layout.value_bytes
                    w.line(
                        f'{vars.value} = int.from_bytes(values{f}[vpos{f} : vpos{f} + {vb}], "little") & {hex(layout.mask)}'
                    )
                    w.line(f"vpos{f} += {vb}")
                with w.block("else:"):
                    w.line(f'raise ValueError("field {f}: invalid code")')
                emitter.emit_commit(w, vars)
            pack_args = ", ".join(f"value{plan.layout.index}" for plan in plans)
            w.line(f"out += _RECORD.pack({pack_args})")
        for plan in plans:
            f = plan.layout.index
            with w.block(f"if vpos{f} != len(values{f}):"):
                w.line(f'raise ValueError("field {f} value stream not fully consumed")')
        w.line("return bytes(out)")
    w.line()


def _emit_usage_report(w: CodeWriter, model: CompressorModel, plans: list[FieldPlan]) -> None:
    with w.block("def usage_report():"):
        w.line('"""Predictor usage feedback from the most recent compression."""')
        with w.block("if _last_usage is None:"):
            w.line('return "no compression has run yet"')
        w.line('lines = ["predictor usage:"]')
        for position, plan in enumerate(plans):
            layout = plan.layout
            labels = []
            for resolved in layout.predictors:
                labels += [
                    f"{resolved.spec} slot {slot}" for slot in range(resolved.spec.depth)
                ]
            labels.append("miss")
            w.line(f"counts = _last_usage[{position}]")
            w.line("total = sum(counts) or 1")
            w.line(
                f'lines.append("  field {layout.index} '
                f'({layout.width_bits}-bit{", PC" if layout.is_pc else ""}):")'
            )
            w.line(f"names = {labels!r}")
            with w.block("for code, (name, count) in enumerate(zip(names, counts)):"):
                w.line(
                    'lines.append("    code %2d %-14s %10d (%.1f%%)" % (code, name, count, 100.0 * count / total))'
                )
        w.line('return "\\n".join(lines)')
    w.line()


def _emit_main(w: CodeWriter) -> None:
    with w.block("def main(argv=None):"):
        w.line('"""Filter: compress stdin to stdout; -d decompresses."""')
        w.line("argv = sys.argv[1:] if argv is None else argv")
        w.line("data = sys.stdin.buffer.read()")
        with w.block('if "-d" in argv:'):
            w.line("sys.stdout.buffer.write(decompress(data))")
        with w.block("else:"):
            w.line("sys.stdout.buffer.write(compress(data))")
            w.line("print(usage_report(), file=sys.stderr)")
        w.line("return 0")
    w.line()
    w.line()
    with w.block('if __name__ == "__main__":'):
        w.line("raise SystemExit(main())")
