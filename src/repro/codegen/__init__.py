"""Code generation: the TCgen compiler proper.

Given a resolved :class:`~repro.model.CompressorModel`, the backends in
this package synthesize complete, self-contained trace compressors:

- :func:`generate_python` — a Python module exposing ``compress`` /
  ``decompress`` / ``usage_report`` plus a stdin/stdout ``main``;
- :func:`generate_c` — a single C source file in the style the paper
  describes (static functions, register locals, block I/O, one statement
  per line, meaningful names), compiled with the system C compiler.

Both backends specialize the emitted code for the exact trace format and
predictor selection: constants are inlined, predictor loops are unrolled,
dead code (unused strides, absent headers, untaken policies) is never
emitted, and table index arithmetic uses masks because table sizes are
powers of two.  The generated compressors produce containers that are
stream-for-stream identical to the interpreted engine.
"""

from repro.codegen.compile import (
    CompiledC,
    compile_c,
    generate_and_compile_c,
    load_python_module,
)
from repro.codegen.c_backend import generate_c
from repro.codegen.python_backend import generate_python

__all__ = [
    "CompiledC",
    "compile_c",
    "generate_and_compile_c",
    "generate_c",
    "generate_python",
    "load_python_module",
]
