"""Code generation: the TCgen compiler proper.

Given a resolved :class:`~repro.model.CompressorModel`, the backends in
this package synthesize complete, self-contained trace compressors:

- :func:`generate_python` — a Python module exposing ``compress`` /
  ``decompress`` / ``usage_report`` plus a stdin/stdout ``main``;
- :func:`generate_c` — a single C source file in the style the paper
  describes (static functions, register locals, block I/O, one statement
  per line, meaningful names), compiled with the system C compiler.

Both backends specialize the emitted code for the exact trace format and
predictor selection: constants are inlined, predictor loops are unrolled,
dead code (unused strides, absent headers, untaken policies) is never
emitted, and table index arithmetic uses masks because table sizes are
powers of two.  The generated compressors produce containers that are
stream-for-stream identical to the interpreted engine.

Passing ``verify=True`` to either generator runs the codegen invariant
verifier (:mod:`repro.lint.genverify`) over the emitted source as a
post-generation self-check — the paper's dead-code-elimination, table
sharing, type minimization, and ``L2 * 2**(x-1)`` sizing rules are proved
against the actual output, and any violation raises
:class:`~repro.errors.CodegenError` instead of shipping a wrong
compressor.
"""

from repro.codegen.c_backend import generate_c as _generate_c
from repro.codegen.c_backend import generate_c_library as _generate_c_library
from repro.codegen.compile import (
    CompiledC,
    compile_c,
    generate_and_compile_c,
    load_python_module,
)
from repro.codegen.python_backend import generate_python as _generate_python
from repro.model.layout import CompressorModel

__all__ = [
    "CompiledC",
    "compile_c",
    "generate_and_compile_c",
    "generate_c",
    "generate_c_library",
    "generate_python",
    "load_python_module",
]


def generate_python(
    model: CompressorModel,
    codec: str = "bzip2",
    verify: bool = False,
    ir_facts: bool = True,
) -> str:
    """Generate a specialized Python compressor module.

    With ``verify=True`` the emitted source is checked against the
    codegen invariants before being returned.  ``ir_facts=False``
    disables the IR-proven elisions and reproduces the pre-IR output
    byte for byte (the differential-testing baseline).
    """
    source = _generate_python(model, codec=codec, ir_facts=ir_facts)
    if verify:
        from repro.lint.genverify import assert_verified

        assert_verified(model, source, backend="python")
    return source


def generate_c(
    model: CompressorModel,
    codec: str = "bzip2",
    verify: bool = False,
    ir_facts: bool = True,
) -> str:
    """Generate a specialized C compressor source file.

    With ``verify=True`` the emitted source is checked against the
    codegen invariants before being returned.  ``ir_facts=False``
    disables the IR-proven elisions (differential-testing baseline).
    """
    source = _generate_c(model, codec=codec, ir_facts=ir_facts)
    if verify:
        from repro.lint.genverify import assert_verified

        assert_verified(model, source, backend="c")
    return source


def generate_c_library(
    model: CompressorModel, verify: bool = False, ir_facts: bool = True
) -> str:
    """Generate the shared-library (native fast path) C source.

    With ``verify=True`` the emitted source is checked against the
    codegen invariants — including the exported ABI's completeness —
    before being returned.  ``ir_facts=False`` disables the IR-proven
    elisions (differential-testing baseline).
    """
    source = _generate_c_library(model, ir_facts=ir_facts)
    if verify:
        from repro.lint.genverify import assert_verified

        assert_verified(model, source, backend="c-library")
    return source
