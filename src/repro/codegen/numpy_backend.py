"""The NumPy columnar backend: chunk-at-a-time vectorized kernels.

Third codegen target next to the generated Python loop and the compiled
C library.  A :class:`NumpyKernel` consumes the lowered IR facts
(:mod:`repro.ir.vector`) for one resolved model and evaluates the
per-record kernel as whole-column array operations wherever the IR
proves there is no loop-carried table dependence:

- records are unpacked with one ``np.frombuffer`` over a structured
  dtype — per-field columns, no per-record Python;
- fields whose predictors are all pure last-value with a constant L1
  line compress via a *push mask* (SMART) or all-ones mask (ALWAYS),
  an exclusive cumulative sum, and gathers over the pushed-value
  sequence — slot ``k`` before record ``i`` is ``P[cum[i]-1-k]`` (or 0
  on underflow, matching the zero-initialized tables);
- the same fields decompress by resolving hit codes as a pointer forest
  (``parent[i] = i-1-slot``) with pointer doubling, valid for ALWAYS at
  any depth and for SMART at depth 1 (the guard-free ``plain_store``
  case the liveness analysis proves);
- every other field — (D)FCM hash chains, per-record line indices,
  SMART depth > 1 on the decode side — runs a tight per-field scalar
  loop over its column using the reference :class:`FieldKernel`.

The kernel exposes exactly the :class:`repro.codegen.native.NativeKernel`
interface (``compress_chunk`` / ``compress_trace`` / ``decompress_chunk``),
so the engine, streaming reader, query executor, and generated modules
drive it through their existing kernel branches.  Output is byte-identical
to the pure-Python backend by construction: per-field processing with
per-field state is a reordering of the record-major loop, and the
vectorized paths are closed forms of the same table recurrences.

``TCGEN_NUMPY=0`` disables the backend; failures raise
:class:`~repro.errors.NumpyBackendError`, which ``backend="auto"``
dispatch turns into a logged Python fallback.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.errors import CompressedFormatError, NumpyBackendError, TraceFormatError
from repro.ir.analysis import analyze_model
from repro.ir.vector import analyze_vectors
from repro.model.layout import CompressorModel, FieldLayout
from repro.runtime.kernel import FieldKernel

_CODE_DTYPE = {1: "<u1", 2: "<u2", 4: "<u4"}
_VALUE_DTYPE = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}

_kernels: dict[tuple, "NumpyKernel"] = {}
_kernels_lock = threading.Lock()


def numpy_enabled() -> bool:
    """False when the ``TCGEN_NUMPY=0`` escape hatch is set."""
    return os.environ.get("TCGEN_NUMPY", "1") != "0"


class _FieldPlan:
    """Precomputed per-field facts the chunk kernels consume."""

    __slots__ = (
        "layout", "index", "is_pc", "code_bytes", "value_bytes", "mask",
        "miss", "vector_compress", "vector_decompress", "slot_by_code",
        "max_slot", "code_dtype", "value_dtype", "column_dtype",
    )

    def __init__(self, layout: FieldLayout, vector) -> None:
        self.layout = layout
        self.index = layout.index
        self.is_pc = layout.is_pc
        self.code_bytes = layout.code_bytes
        self.value_bytes = layout.value_bytes
        self.mask = layout.mask
        self.miss = layout.miss_code
        self.vector_compress = vector.vector_compress
        self.vector_decompress = vector.vector_decompress
        # For pure-LV fields, identification code j names slot j - first_code
        # of its predictor; flattening per the dense code assignment.
        slots: list[int] = []
        for pred in layout.predictors:
            slots.extend(range(pred.spec.depth))
        self.slot_by_code = np.array(slots + [0], dtype=np.int64)
        self.max_slot = max(slots, default=0)
        self.code_dtype = np.dtype(_CODE_DTYPE[layout.code_bytes])
        self.value_dtype = np.dtype(_VALUE_DTYPE[layout.value_bytes])
        self.column_dtype = np.dtype(f"<u{layout.spec.bytes}")


class NumpyKernel:
    """A columnar kernel for one (spec, options) model.

    Drop-in for :class:`~repro.codegen.native.NativeKernel`: same three
    entry points, same stream/usage shapes, same byte output.
    """

    def __init__(self, model: CompressorModel) -> None:
        if model.options.update_policy.value == "search":  # pragma: no cover
            raise NumpyBackendError(
                "the numpy backend bakes in smart/always updates"
            )
        self.model = model
        self.record_bytes = model.spec.record_bytes
        self.header_bytes = model.spec.header_bytes
        self.fingerprint = model.fingerprint()
        self.smart = model.options.smart_update
        vectors = analyze_vectors(analyze_model(model))
        self._plans = {
            layout.index: _FieldPlan(layout, vectors.field(layout.index))
            for layout in model.fields
        }
        self._record_dtype = np.dtype(
            [
                (f"f{pos}", f"<u{layout.spec.bytes}")
                for pos, layout in enumerate(model.fields)
            ]
        )

    # -- compression ---------------------------------------------------------

    def compress_chunk(self, records: bytes) -> tuple[list[bytes], list[list[int]]]:
        """Kernel-compress one headerless record slice.

        Returns exactly what the Python ``_compress_chunk`` worker
        returns: interleaved per-field (codes, values) streams plus
        per-field usage counts.
        """
        if len(records) % self.record_bytes:
            raise TraceFormatError(
                f"record slice of {len(records)} bytes does not frame into "
                f"{self.record_bytes}-byte records"
            )
        count = len(records) // self.record_bytes
        model = self.model
        if count:
            body = np.frombuffer(records, dtype=self._record_dtype, count=count)
            columns = {
                layout.index: body[f"f{pos}"]
                for pos, layout in enumerate(model.fields)
            }
        else:
            columns = {
                layout.index: np.zeros(0, dtype=self._plans[layout.index].column_dtype)
                for layout in model.fields
            }
        pc_column = columns[model.pc_field.index]

        results: dict[int, tuple[bytes, bytes, list[int]]] = {}
        for layout in model.process_order:
            plan = self._plans[layout.index]
            column = columns[layout.index]
            if plan.vector_compress:
                results[layout.index] = self._compress_vector(plan, column)
            else:
                results[layout.index] = self._compress_scalar(
                    plan, column, pc_column
                )

        streams: list[bytes] = []
        usage: list[list[int]] = []
        for layout in model.fields:
            codes, values, counts = results[layout.index]
            streams.append(codes)
            streams.append(values)
            usage.append(counts)
        return streams, usage

    def compress_trace(self, raw: bytes) -> tuple[list[bytes], list[list[int]]]:
        """Kernel-compress a whole trace (skipping the header)."""
        body = len(raw) - self.header_bytes
        if body < 0 or body % self.record_bytes:
            raise TraceFormatError(
                f"trace of {len(raw)} bytes does not frame into a "
                f"{self.header_bytes}-byte header plus "
                f"{self.record_bytes}-byte records"
            )
        return self.compress_chunk(raw[self.header_bytes :])

    def _compress_vector(
        self, plan: _FieldPlan, column: np.ndarray
    ) -> tuple[bytes, bytes, list[int]]:
        """Columnar compress for a pure-LV constant-line field.

        Closed form of the table recurrence: slot ``k`` before record
        ``i`` equals ``P[cum[i]-1-k]`` where ``P`` is the sequence of
        pushed values and ``cum`` the exclusive cumulative push count —
        underflow reads the table's initial zeros.
        """
        n = len(column)
        miss = plan.miss
        if n == 0:
            return b"", b"", [0] * (miss + 1)
        v = column.astype(np.uint64)
        if self.smart:
            prev = np.empty(n, dtype=np.uint64)
            prev[0] = 0
            prev[1:] = v[:-1]
            push = v != prev
        else:
            push = np.ones(n, dtype=bool)
        pushed = v[push]
        cum_ex = np.cumsum(push) - push  # pushes strictly before record i

        codes = np.full(n, miss, dtype=np.int64)
        slot_values: dict[int, np.ndarray] = {}
        for k in range(plan.max_slot + 1):
            idx = cum_ex - 1 - k
            sv = np.zeros(n, dtype=np.uint64)
            valid = idx >= 0
            if pushed.size:
                sv[valid] = pushed[idx[valid]]
            slot_values[k] = sv
        # Reverse order: earlier candidates overwrite later ones, which
        # is exactly predictions.index(value) first-match semantics.
        for code in range(miss - 1, -1, -1):
            slot = int(plan.slot_by_code[code])
            codes[slot_values[slot] == v] = code

        counts = np.bincount(codes, minlength=miss + 1).tolist()
        code_stream = codes.astype(plan.code_dtype).tobytes()
        value_stream = v[codes == miss].astype(plan.value_dtype).tobytes()
        return code_stream, value_stream, counts

    def _compress_scalar(
        self, plan: _FieldPlan, column: np.ndarray, pc_column: np.ndarray
    ) -> tuple[bytes, bytes, list[int]]:
        """Reference per-record loop over one field's column."""
        kernel = FieldKernel(plan.layout, self.model.options)
        begin, commit = kernel.begin, kernel.commit
        values = column.tolist()
        pcs = None if plan.is_pc else pc_column.tolist()
        codes = bytearray()
        misses = bytearray()
        counts = [0] * (plan.miss + 1)
        miss, cb, vb = plan.miss, plan.code_bytes, plan.value_bytes
        for i in range(len(values)):
            value = values[i]
            predictions = begin(0 if pcs is None else pcs[i])
            try:
                code = predictions.index(value)
            except ValueError:
                code = miss
                misses += value.to_bytes(vb, "little")
            if cb == 1:
                codes.append(code)
            else:
                codes += code.to_bytes(cb, "little")
            counts[code] += 1
            commit(value)
        return bytes(codes), bytes(misses), counts

    # -- decompression -------------------------------------------------------

    def decompress_chunk(
        self, count: int, codes: list[bytes], values: list[bytes]
    ) -> bytes:
        """Decode one chunk back to raw record bytes (no header)."""
        model = self.model
        decoded: dict[int, np.ndarray] = {}
        pc_list: list[int] | None = None
        for layout in model.process_order:
            plan = self._plans[layout.index]
            position = next(
                pos for pos, lo in enumerate(model.fields) if lo.index == layout.index
            )
            code_stream = codes[position]
            value_stream = values[position]
            expected = count * plan.code_bytes
            if len(code_stream) != expected:
                raise CompressedFormatError(
                    f"field {plan.index} code stream holds "
                    f"{len(code_stream)} bytes, expected {expected}"
                )
            if plan.vector_decompress:
                column = self._decompress_vector(plan, count, code_stream, value_stream)
            else:
                if pc_list is None and not plan.is_pc:
                    pc_list = decoded[model.pc_field.index].tolist()
                column = self._decompress_scalar(
                    plan, count, code_stream, value_stream, pc_list
                )
            decoded[layout.index] = column
            if plan.is_pc and not plan.vector_decompress:
                # Scalar fields downstream index their tables by PC.
                pc_list = column.tolist()

        record = np.zeros(count, dtype=self._record_dtype)
        for pos, layout in enumerate(model.fields):
            record[f"f{pos}"] = decoded[layout.index].astype(
                self._plans[layout.index].column_dtype, copy=False
            )
        return record.tobytes()

    def _decompress_vector(
        self, plan: _FieldPlan, count: int, code_stream: bytes, value_stream: bytes
    ) -> np.ndarray:
        """Columnar decode: hits form a pointer forest over record indices.

        A hit with slot ``s`` at record ``i`` repeats the value decoded at
        record ``i-1-s`` (ALWAYS semantics; SMART only reaches here at
        depth 1, where both policies coincide).  Pointer doubling resolves
        every chain to its root — a miss record or the zero-initialized
        table — in ``O(log n)`` passes.
        """
        miss, vb = plan.miss, plan.value_bytes
        code_arr = np.frombuffer(code_stream, dtype=plan.code_dtype).astype(np.int64)
        over = code_arr > miss
        if over.any():
            i = int(np.argmax(over))
            raise CompressedFormatError(
                f"field {plan.index} record {i}: code {int(code_arr[i])} "
                f"out of range 0..{miss}"
            )
        miss_mask = code_arr == miss
        nmiss = int(miss_mask.sum())
        if len(value_stream) < nmiss * vb:
            short = len(value_stream) // vb
            record = int(np.nonzero(miss_mask)[0][short])
            raise CompressedFormatError(
                f"field {plan.index} value stream exhausted at record {record}"
            )
        if len(value_stream) > nmiss * vb:
            raise CompressedFormatError(
                f"field {plan.index} value stream has "
                f"{len(value_stream) - nmiss * vb} unconsumed bytes"
            )
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        miss_values = np.frombuffer(
            value_stream, dtype=plan.value_dtype, count=nmiss
        ).astype(np.uint64) & np.uint64(plan.mask)

        indices = np.arange(count, dtype=np.int64)
        slots = plan.slot_by_code[code_arr]
        parent = indices - 1 - slots
        root_value = np.zeros(count, dtype=np.uint64)
        root_value[miss_mask] = miss_values
        is_root = miss_mask | (parent < 0)
        parent = np.where(is_root, indices, parent)
        while True:
            grandparent = parent[parent]
            if np.array_equal(grandparent, parent):
                break
            parent = grandparent
        return root_value[parent]

    def _decompress_scalar(
        self,
        plan: _FieldPlan,
        count: int,
        code_stream: bytes,
        value_stream: bytes,
        pc_list: list[int] | None,
    ) -> np.ndarray:
        """Reference per-record decode loop over one field's streams."""
        kernel = FieldKernel(plan.layout, self.model.options)
        begin, commit = kernel.begin, kernel.commit
        code_arr = np.frombuffer(code_stream, dtype=plan.code_dtype).tolist()
        column = np.zeros(count, dtype=np.uint64)
        pos = 0
        miss, vb, mask = plan.miss, plan.value_bytes, plan.mask
        findex = plan.index
        int_from_bytes = int.from_bytes
        for i in range(count):
            predictions = begin(0 if pc_list is None else pc_list[i])
            code = code_arr[i]
            if code < miss:
                value = predictions[code]
            elif code == miss:
                piece = value_stream[pos : pos + vb]
                if len(piece) != vb:
                    raise CompressedFormatError(
                        f"field {findex} value stream exhausted at record {i}"
                    )
                value = int_from_bytes(piece, "little") & mask
                pos += vb
            else:
                raise CompressedFormatError(
                    f"field {findex} record {i}: code {code} out of range 0..{miss}"
                )
            commit(value)
            column[i] = value
        if pos != len(value_stream):
            raise CompressedFormatError(
                f"field {findex} value stream has "
                f"{len(value_stream) - pos} unconsumed bytes"
            )
        return column


def load_numpy_kernel(model: CompressorModel) -> NumpyKernel:
    """Build (and memoize) the columnar kernel for ``model``.

    Raises :class:`~repro.errors.NumpyBackendError` when the backend is
    disabled via ``TCGEN_NUMPY=0``.  Unlike the native loader this never
    compiles anything — construction only precomputes per-field plans.
    """
    if not numpy_enabled():
        raise NumpyBackendError("numpy backend disabled via TCGEN_NUMPY=0")
    key = (
        model.fingerprint(),
        tuple(sorted(vars(model.options).items())),
    )
    with _kernels_lock:
        kernel = _kernels.get(key)
        if kernel is None:
            kernel = NumpyKernel(model)
            if len(_kernels) > 64:
                _kernels.clear()
            _kernels[key] = kernel
        return kernel
