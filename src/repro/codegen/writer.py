"""Indented source writer shared by the code-generation backends.

The paper stresses that TCgen's output is human readable: correctly
indented, one statement per line, no macros, meaningful names.  This tiny
writer enforces the indentation part mechanically.
"""

from __future__ import annotations


class CodeWriter:
    """Accumulates source lines with block indentation."""

    def __init__(self, indent_unit: str = "    ") -> None:
        self._lines: list[str] = []
        self._depth = 0
        self._unit = indent_unit

    def line(self, text: str = "") -> None:
        """Emit one line at the current indentation (blank stays blank)."""
        if text:
            self._lines.append(self._unit * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        for text in texts:
            self.line(text)

    def indent(self) -> None:
        self._depth += 1

    def dedent(self) -> None:
        if self._depth == 0:
            raise ValueError("dedent below zero")
        self._depth -= 1

    def block(self, opener: str) -> "_Block":
        """Context manager: emit ``opener``, indent inside the ``with``."""
        self.line(opener)
        return _Block(self)

    def getvalue(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, writer: CodeWriter) -> None:
        self._writer = writer

    def __enter__(self) -> CodeWriter:
        self._writer.indent()
        return self._writer

    def __exit__(self, *exc) -> None:
        self._writer.dedent()
