"""Measuring candidate-predictor accuracy on trace samples.

For each field of a trace, run a set of candidate predictors (standalone
LV/FCM/DFCM instances with realistic table sizes) over a sample of
records and record their hit ratios.  This quantifies what the paper's
post-compression usage feedback reveals, but *before* generating any
compressor — the input to automatic specification recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.dfcm import DFCMPredictor
from repro.predictors.fcm import FCMPredictor
from repro.predictors.lastvalue import LastValuePredictor
from repro.spec.ast import PredictorKind, PredictorSpec
from repro.tio.traceformat import TraceFormat, unpack_records

#: Candidate predictor shapes tried per field, cheap to expensive.
DEFAULT_CANDIDATES: tuple[PredictorSpec, ...] = (
    PredictorSpec(PredictorKind.LV, 0, 1),
    PredictorSpec(PredictorKind.LV, 0, 4),
    PredictorSpec(PredictorKind.FCM, 1, 2),
    PredictorSpec(PredictorKind.FCM, 3, 2),
    PredictorSpec(PredictorKind.DFCM, 1, 2),
    PredictorSpec(PredictorKind.DFCM, 3, 2),
)


@dataclass(frozen=True)
class CandidateScore:
    """Hit ratio of one candidate predictor on one field's sample."""

    field_index: int
    predictor: PredictorSpec
    hits: int
    records: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.records if self.records else 0.0


def _build_predictor(
    candidate: PredictorSpec, width_bits: int, l1_lines: int, l2_size: int
):
    if candidate.kind is PredictorKind.LV:
        return LastValuePredictor(candidate.depth, lines=l1_lines, width_bits=width_bits)
    if candidate.kind is PredictorKind.FCM:
        return FCMPredictor(
            candidate.order, candidate.depth, l2_size,
            lines=l1_lines, width_bits=width_bits,
        )
    return DFCMPredictor(
        candidate.order, candidate.depth, l2_size,
        lines=l1_lines, width_bits=width_bits,
    )


def score_candidates(
    fmt: TraceFormat,
    raw: bytes,
    candidates: tuple[PredictorSpec, ...] = DEFAULT_CANDIDATES,
    sample_records: int = 20_000,
    l1_lines: int = 4096,
    l2_size: int = 16384,
) -> list[CandidateScore]:
    """Hit ratios of every candidate on every field of a trace sample.

    The PC field (``fmt.pc_field``) is scored without a PC index (its own
    L1 is forced to one line, as the specification language requires);
    other fields index their tables with the record's PC.
    """
    _, columns = unpack_records(fmt, raw)
    count = min(len(columns[0]) if columns else 0, sample_records)
    pcs = columns[fmt.pc_field - 1][:count].tolist()

    scores: list[CandidateScore] = []
    for position, column in enumerate(columns):
        field_index = position + 1
        width = fmt.field_bits[position]
        is_pc = field_index == fmt.pc_field
        values = column[:count].tolist()
        for candidate in candidates:
            lines = 1 if is_pc else l1_lines
            predictor = _build_predictor(candidate, width, lines, l2_size)
            hits = 0
            for pc, value in zip(pcs, values):
                index = 0 if is_pc else pc
                if value in predictor.predict(index):
                    hits += 1
                predictor.update(value, index)
            scores.append(
                CandidateScore(
                    field_index=field_index,
                    predictor=candidate,
                    hits=hits,
                    records=count,
                )
            )
    return scores
