"""Field-level statistics of raw traces."""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.tio.traceformat import TraceFormat, unpack_records


@dataclass
class FieldStats:
    """Summary statistics for one record field."""

    index: int
    bits: int
    count: int
    unique_values: int
    value_entropy_bits: float  # Shannon entropy of the value distribution
    top_values: list[tuple[int, int]]  # (value, occurrences), most common first
    # Stride structure (differences between consecutive values):
    unique_strides: int
    stride_entropy_bits: float
    top_strides: list[tuple[int, int]]
    zero_stride_fraction: float  # repeats
    constant_stride_fraction: float  # share covered by the single best stride

    @property
    def value_redundancy(self) -> float:
        """1 - entropy/width: how far values fall short of random bits."""
        if self.bits == 0:
            return 1.0
        return max(0.0, 1.0 - self.value_entropy_bits / self.bits)


@dataclass
class TraceStats:
    """Per-field statistics plus simple whole-trace facts."""

    record_count: int
    record_bytes: int
    fields: list[FieldStats] = dc_field(default_factory=list)

    def render(self) -> str:
        lines = [f"{self.record_count:,} records x {self.record_bytes} bytes"]
        for f in self.fields:
            lines.append(
                f"field {f.index} ({f.bits}-bit): "
                f"{f.unique_values:,} unique values, "
                f"value entropy {f.value_entropy_bits:.1f} bits, "
                f"stride entropy {f.stride_entropy_bits:.1f} bits, "
                f"{f.zero_stride_fraction:.0%} repeats, "
                f"{f.constant_stride_fraction:.0%} best-stride"
            )
        return "\n".join(lines)


def _entropy_bits(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def _column_stats(index: int, bits: int, column: np.ndarray, top: int) -> FieldStats:
    count = len(column)
    values, value_counts = np.unique(column, return_counts=True)
    order = np.argsort(value_counts)[::-1]
    top_values = [
        (int(values[i]), int(value_counts[i])) for i in order[:top]
    ]

    if count > 1:
        strides = np.diff(column)  # uint64 arithmetic wraps, as the predictors do
        stride_values, stride_counts = np.unique(strides, return_counts=True)
        stride_order = np.argsort(stride_counts)[::-1]

        def signed(value: np.uint64) -> int:
            v = int(value)
            return v - (1 << 64) if v >= 1 << 63 else v

        top_strides = [
            (signed(stride_values[i]), int(stride_counts[i]))
            for i in stride_order[:top]
        ]
        zero_fraction = float(stride_counts[stride_values == 0].sum()) / len(strides)
        best_fraction = float(stride_counts[stride_order[0]]) / len(strides)
        stride_entropy = _entropy_bits(stride_counts)
        unique_strides = len(stride_values)
    else:
        top_strides = []
        zero_fraction = 0.0
        best_fraction = 0.0
        stride_entropy = 0.0
        unique_strides = 0

    return FieldStats(
        index=index,
        bits=bits,
        count=count,
        unique_values=len(values),
        value_entropy_bits=_entropy_bits(value_counts),
        top_values=top_values,
        unique_strides=unique_strides,
        stride_entropy_bits=stride_entropy,
        top_strides=top_strides,
        zero_stride_fraction=zero_fraction,
        constant_stride_fraction=best_fraction,
    )


def analyze_trace(fmt: TraceFormat, raw: bytes, top: int = 5) -> TraceStats:
    """Compute per-field statistics for a raw trace."""
    _, columns = unpack_records(fmt, raw)
    stats = TraceStats(
        record_count=len(columns[0]) if columns else 0,
        record_bytes=fmt.record_bytes,
    )
    for position, column in enumerate(columns):
        stats.fields.append(
            _column_stats(position + 1, fmt.field_bits[position], column, top)
        )
    return stats
