"""Trace analysis and automatic predictor selection.

The paper asks users to pick predictors by hand, guided by the usage
feedback the generated code prints after each compression (Section 7.5).
This package automates the whole workflow:

- :mod:`repro.analysis.stats` — field-level statistics of a raw trace
  (entropy, unique values, stride histograms, per-PC locality), useful
  for understanding *why* a trace is hard or easy to compress;
- :mod:`repro.analysis.predictability` — measures how well each candidate
  predictor family/order would do on each field of a sample;
- :mod:`repro.analysis.recommend` — turns those measurements into a
  complete :class:`~repro.spec.TraceSpec` under a memory budget.
"""

from repro.analysis.predictability import (
    CandidateScore,
    score_candidates,
)
from repro.analysis.recommend import recommend_spec
from repro.analysis.stats import FieldStats, TraceStats, analyze_trace

__all__ = [
    "CandidateScore",
    "FieldStats",
    "TraceStats",
    "analyze_trace",
    "recommend_spec",
    "score_candidates",
]
