"""Automatic specification recommendation.

Builds a complete :class:`~repro.spec.TraceSpec` for a trace format from
measured candidate-predictor accuracy: per field, keep the candidates
whose hit ratio clears a usefulness threshold *and* adds coverage beyond
the already-selected set, subject to a total table-memory budget.  This
mechanizes the paper's recommendation ("start with a wide range of
predictors, then eliminate the useless ones") into a one-call API.
"""

from __future__ import annotations

from repro.analysis.predictability import score_candidates
from repro.model.layout import build_model
from repro.spec.ast import FieldSpec, PredictorKind, PredictorSpec, TraceSpec
from repro.spec.validate import validate_spec
from repro.tio.traceformat import TraceFormat

#: A candidate must predict at least this share of sampled records.
MIN_HIT_RATIO = 0.05
#: ...and improve on the best already-chosen candidate by this much,
#: unless it is of a different family (diverse families complement).
MIN_IMPROVEMENT = 0.02


def recommend_spec(
    fmt: TraceFormat,
    raw: bytes,
    budget_bytes: int = 64 << 20,
    l1_lines: int = 4096,
    l2_size: int = 16384,
    sample_records: int = 20_000,
) -> TraceSpec:
    """Recommend a specification for ``fmt`` based on a sample of ``raw``.

    Always returns a valid specification: if nothing predicts well, each
    field falls back to the best-scoring candidate anyway (every field
    needs at least one predictor).
    """
    scores = score_candidates(
        fmt, raw, sample_records=sample_records, l1_lines=l1_lines, l2_size=l2_size
    )

    fields: list[FieldSpec] = []
    for position, bits in enumerate(fmt.field_bits):
        field_index = position + 1
        is_pc = field_index == fmt.pc_field
        field_scores = sorted(
            (s for s in scores if s.field_index == field_index),
            key=lambda s: s.hit_ratio,
            reverse=True,
        )
        chosen: list[PredictorSpec] = []
        families: dict[PredictorKind, float] = {}
        for score in field_scores:
            candidate = score.predictor
            if chosen and score.hit_ratio < MIN_HIT_RATIO:
                break
            best_in_family = families.get(candidate.kind, 0.0)
            if (
                chosen
                and score.hit_ratio < best_in_family + MIN_IMPROVEMENT
                and candidate.kind in families
            ):
                continue
            chosen.append(candidate)
            families[candidate.kind] = max(best_in_family, score.hit_ratio)
        if not chosen:
            chosen = [field_scores[0].predictor]
        fields.append(
            FieldSpec(
                bits=bits,
                index=field_index,
                predictors=tuple(chosen),
                l1=1 if is_pc else l1_lines,
                l2=_cap_l2(l2_size, bits, chosen),
            )
        )

    spec = TraceSpec(
        header_bits=fmt.header_bits, fields=tuple(fields), pc_field=fmt.pc_field
    )
    validate_spec(spec)
    spec = _fit_budget(spec, budget_bytes)
    _assert_lint_clean(spec)
    return spec


def _cap_l2(l2_size: int, bits: int, chosen: list[PredictorSpec]) -> int:
    """Cap L2 so no table outgrows the field's context space.

    An order-x context over a w-bit field has at most ``2**(w*x)`` distinct
    values; with the incremental hash the table for that predictor holds
    ``L2 * 2**(x-1)`` lines, so L2 beyond ``2**((w-1)*x + 1)`` lines can
    never be filled (the linter flags it as TC022).
    """
    cap = min(
        ((bits - 1) * p.order + 1 for p in chosen if p.kind is not PredictorKind.LV),
        default=None,
    )
    if cap is None:
        return l2_size
    return min(l2_size, 1 << min(cap, 28))


def _assert_lint_clean(spec: TraceSpec) -> None:
    """Machine-recommended specifications must lint clean of errors."""
    from repro.errors import ValidationError
    from repro.lint import Severity, lint_spec

    errors = [d for d in lint_spec(spec) if d.severity is Severity.ERROR]
    if errors:
        details = "; ".join(d.render() for d in errors[:5])
        raise ValidationError(
            f"recommended specification fails its own lint: {details}"
        )


def _fit_budget(spec: TraceSpec, budget_bytes: int) -> TraceSpec:
    """Shrink L2 sizes (halving) until the table footprint fits."""
    while build_model(spec).table_bytes() > budget_bytes:
        shrunk = []
        shrank_any = False
        for field in spec.fields:
            l2 = field.l2_size
            if l2 > 256:
                shrunk.append(
                    FieldSpec(
                        bits=field.bits, index=field.index,
                        predictors=field.predictors, l1=field.l1, l2=l2 // 2,
                    )
                )
                shrank_any = True
            else:
                shrunk.append(field)
        if not shrank_any:
            break
        spec = TraceSpec(
            header_bits=spec.header_bits, fields=tuple(shrunk), pc_field=spec.pc_field
        )
    return spec
