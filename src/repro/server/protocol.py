"""The trace-compression service wire protocol.

A single, length-prefixed framing shared by the asyncio server
(:mod:`repro.server.daemon`) and the synchronous client
(:mod:`repro.client`).  Everything on the wire is a *frame*:

```
magic "TC" (2 bytes)  type u8  flags u8 (reserved, 0)
payload_length u32 big-endian
payload (payload_length bytes)
```

Frame types
-----------

======== === =========================================================
REQUEST    1 client -> server; JSON header opening one request
CONTINUE   2 server -> client; go-ahead to stream the request payload
DATA       3 either direction; one chunk of payload bytes
END        4 either direction; payload finished (empty frame)
RESPONSE   5 server -> client; JSON success header (payload follows)
ERROR      6 server -> client; JSON typed failure (terminates request)
FLUSH      7 client -> server; make buffered stream records durable
ACK        8 server -> client; durable watermark after a flush
======== === =========================================================

One request is a strict frame sequence on an otherwise idle connection:

```
C->S  REQUEST {op, id, payload_size, deadline_ms, params}
S->C  CONTINUE {id}            (only when payload_size != 0)
C->S  DATA* END                (only when payload_size != 0)
S->C  RESPONSE {id, payload_size, meta}  DATA*  END
  or  ERROR {id, code, message, retry_after_ms?}
```

The CONTINUE handshake is the backpressure mechanism: admission control
runs *before* the server agrees to receive the payload, so a saturated
server rejects with ``code="backpressure"`` after reading only a small
header — no payload bytes are wasted, and the client retries with
exponential backoff.  Requests without payload (``health``, ``metrics``)
skip the handshake entirely.

The ``stream-compress`` op extends the sequence into a long-lived
session on the same connection.  After the CONTINUE (whose header
carries the stream's recovered durable watermark, all-zero for a fresh
stream), the client interleaves DATA frames (raw record bytes) with
FLUSH frames; every FLUSH is answered by an ACK carrying the new
durable watermark ``{records, bytes, chunks}`` — the crash-recovery
contract is that everything at or below an acked watermark survives any
subsequent server crash.  ``FLUSH {"close": true}`` seals the archive
with its trailer.  END terminates the session and is answered by the
final RESPONSE:

```
C->S  REQUEST {op: "stream-compress", id, params: {spec, stream, ...}}
S->C  CONTINUE {id, watermark: {records, bytes, chunks}}
C->S  DATA* FLUSH        (repeated in any order)
S->C  ACK {id, watermark, closed}   (one per FLUSH)
C->S  END
S->C  RESPONSE {id, meta: {watermark, closed}}
```

``payload_size`` may be ``null`` for a stream of unknown length (the
server enforces its payload cap cumulatively); otherwise the DATA bytes
must sum to exactly the declared size.

Error codes are stable strings (see :data:`ERROR_CODES`); the client
maps them back to the same typed exceptions the local library raises, so
``repro.client`` callers handle corruption identically whether the
decode ran locally or remotely.
"""

from __future__ import annotations

from dataclasses import dataclass
import json
import struct

from repro.errors import (
    BackpressureError,
    ChecksumError,
    CompressedFormatError,
    DeadlineExceededError,
    OperationCancelled,
    PredicateError,
    ProtocolError,
    RemoteError,
    ReproError,
    ServiceUnavailableError,
    SpecError,
    StreamClosedError,
    TraceFormatError,
    TruncatedContainerError,
)
from repro.tio.container import DecodeReport

#: Protocol magic, the first two bytes of every frame.
MAGIC = b"TC"

#: Protocol version, carried in the REQUEST header and checked by the server.
PROTOCOL_VERSION = 1

#: Default TCP port for ``tcgen-serve``.
DEFAULT_PORT = 8737

#: Default port for the worker pool's HTTP/1.1 gateway.
DEFAULT_HTTP_PORT = 8738

# Frame types.
REQUEST = 1
CONTINUE = 2
DATA = 3
END = 4
RESPONSE = 5
ERROR = 6
FLUSH = 7
ACK = 8

FRAME_TYPES = (REQUEST, CONTINUE, DATA, END, RESPONSE, ERROR, FLUSH, ACK)

#: Fixed frame-header layout: magic, type, flags, payload length.
HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = HEADER.size

#: Payload bytes per DATA frame when streaming (both directions).
DATA_CHUNK = 256 * 1024

#: Hard cap on a single frame's payload.  Control frames are small JSON;
#: DATA frames are at most :data:`DATA_CHUNK`.  Anything larger is a
#: protocol violation, rejected before allocation.
MAX_FRAME_BYTES = 1 << 20

#: The operations the service understands.
OPS = (
    "compress",
    "decompress",
    "salvage",
    "analyze",
    "query",
    "health",
    "metrics",
    "stream-compress",
)

#: Ops that carry no request payload (processed without the CONTINUE
#: handshake and exempt from admission control).
PAYLOADLESS_OPS = ("health", "metrics")

#: Stable protocol error codes.
ERROR_CODES = (
    "bad_request",        # malformed header, unknown op, bad params
    "spec_error",         # the embedded specification failed to parse/validate
    "trace_format",       # raw trace bytes do not frame into records
    "checksum",           # v3 container section failed its CRC32C
    "truncated",          # container ends before its framing says it should
    "corrupt",            # other container corruption / fingerprint mismatch
    "payload_too_large",  # declared or streamed payload exceeds the cap
    "stream_busy",        # the named stream is locked by another writer
    "stream_closed",      # the named stream already carries its trailer
    "backpressure",       # request queue full; retry after the hinted delay
    "deadline_exceeded",  # per-request deadline fired before work finished
    "shutting_down",      # server is draining; no new work accepted
    "internal",           # unexpected server-side failure
)


# -- framing -----------------------------------------------------------------


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload)."""
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type}")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return HEADER.pack(MAGIC, frame_type, 0, len(payload)) + payload


def pack_header_into(buffer: bytearray, frame_type: int, length: int) -> None:
    """Serialize a frame header into a preallocated 8-byte buffer.

    The hot path for DATA streaming: callers keep one per-connection
    scratch ``bytearray(HEADER_SIZE)`` and re-pack it per frame instead
    of allocating a fresh ``header + payload`` concatenation per 256 KiB
    chunk (which would copy the whole chunk just to prepend 8 bytes).
    """
    HEADER.pack_into(buffer, 0, MAGIC, frame_type, 0, length)


def decode_header(header: bytes) -> tuple[int, int]:
    """Parse a frame header into ``(frame_type, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"frame header is {len(header)} bytes, expected {HEADER_SIZE}"
        )
    magic, frame_type, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type}")
    if flags != 0:
        raise ProtocolError(f"reserved frame flags set: {flags:#x}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return frame_type, length


def encode_json_frame(frame_type: int, header: dict) -> bytes:
    """Serialize a control frame whose payload is a JSON object."""
    return encode_frame(
        frame_type, json.dumps(header, separators=(",", ":")).encode()
    )


def decode_json_payload(payload: bytes) -> dict:
    """Parse a control frame's JSON payload, rejecting non-objects."""
    try:
        header = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"control frame payload is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("control frame payload must be a JSON object")
    return header


def iter_data_frames(payload: bytes):
    """Yield the encoded DATA/END frame sequence for ``payload``."""
    for start in range(0, len(payload), DATA_CHUNK):
        yield encode_frame(DATA, payload[start : start + DATA_CHUNK])
    yield encode_frame(END)


# -- error-code mapping ------------------------------------------------------

#: Exception type -> protocol error code, most specific first.
_EXCEPTION_CODES: tuple[tuple[type, str], ...] = (
    (ChecksumError, "checksum"),
    (ProtocolError, "bad_request"),
    (PredicateError, "bad_request"),
    (StreamClosedError, "stream_closed"),
    (TruncatedContainerError, "truncated"),
    (CompressedFormatError, "corrupt"),
    (TraceFormatError, "trace_format"),
    (SpecError, "spec_error"),
    (OperationCancelled, "deadline_exceeded"),
    (DeadlineExceededError, "deadline_exceeded"),
    (BackpressureError, "backpressure"),
    (ServiceUnavailableError, "shutting_down"),
)


def code_for_exception(exc: BaseException) -> str:
    """Map an exception to its stable protocol error code."""
    for exc_type, code in _EXCEPTION_CODES:
        if isinstance(exc, exc_type):
            return code
    if isinstance(exc, ValueError):
        return "bad_request"
    return "internal"


def exception_for(code: str, message: str, retry_after_ms: int | None = None) -> ReproError:
    """Rebuild the typed exception for a wire error code (client side)."""
    if code == "checksum":
        return ChecksumError(message)
    if code == "truncated":
        return TruncatedContainerError(message)
    if code == "corrupt":
        return CompressedFormatError(message)
    if code == "trace_format":
        return TraceFormatError(message)
    if code == "spec_error":
        return SpecError(message)
    if code == "deadline_exceeded":
        return DeadlineExceededError(message)
    if code == "backpressure":
        return BackpressureError(message, retry_after=(retry_after_ms or 100) / 1000.0)
    if code == "shutting_down":
        return ServiceUnavailableError(message)
    if code == "stream_closed":
        return StreamClosedError(message)
    if code == "stream_busy":
        # Retryable the same way backpressure is: the lock holder is
        # usually a dying connection the server has not reaped yet.
        return BackpressureError(message, retry_after=(retry_after_ms or 100) / 1000.0)
    if code == "payload_too_large" or code == "bad_request":
        return ProtocolError(f"{code}: {message}")
    return RemoteError(f"{code}: {message}")


# -- salvage-report serialization --------------------------------------------


def report_to_dict(report: DecodeReport) -> dict:
    """JSON-safe rendering of a :class:`~repro.tio.container.DecodeReport`."""
    return {
        "version": report.version,
        "mode": report.mode,
        "total_chunks": report.total_chunks,
        "total_records": report.total_records,
        "recovered_chunks": list(report.recovered_chunks),
        "lost_chunks": list(report.lost_chunks),
        "reasons": {str(k): v for k, v in report.reasons.items()},
        "recovered_records": report.recovered_records,
        "lost_records": report.lost_records,
        "header_damaged": report.header_damaged,
        "header_stream_lost": report.header_stream_lost,
        "trailer_damaged": report.trailer_damaged,
        "truncated": report.truncated,
        "torn_tail": report.torn_tail,
        "notes": list(report.notes),
    }


def report_from_dict(data: dict) -> DecodeReport:
    """Inverse of :func:`report_to_dict`; tolerant of missing keys."""
    report = DecodeReport()
    report.version = data.get("version")
    report.mode = data.get("mode", "salvage")
    report.total_chunks = data.get("total_chunks")
    report.total_records = data.get("total_records")
    report.recovered_chunks = [int(i) for i in data.get("recovered_chunks", [])]
    report.lost_chunks = [int(i) for i in data.get("lost_chunks", [])]
    report.reasons = {int(k): str(v) for k, v in data.get("reasons", {}).items()}
    report.recovered_records = int(data.get("recovered_records", 0))
    report.lost_records = int(data.get("lost_records", 0))
    report.header_damaged = bool(data.get("header_damaged", False))
    report.header_stream_lost = bool(data.get("header_stream_lost", False))
    report.trailer_damaged = bool(data.get("trailer_damaged", False))
    report.truncated = bool(data.get("truncated", False))
    report.torn_tail = bool(data.get("torn_tail", False))
    report.notes = [str(n) for n in data.get("notes", [])]
    return report


# -- request/response headers ------------------------------------------------


@dataclass(frozen=True)
class RequestHeader:
    """Validated contents of a REQUEST frame."""

    op: str
    request_id: int
    payload_size: int | None  # None = stream until END
    deadline_ms: int | None
    params: dict

    def encode(self) -> bytes:
        return encode_json_frame(
            REQUEST,
            {
                "v": PROTOCOL_VERSION,
                "op": self.op,
                "id": self.request_id,
                "payload_size": self.payload_size,
                "deadline_ms": self.deadline_ms,
                "params": self.params,
            },
        )

    @classmethod
    def decode(cls, payload: bytes) -> "RequestHeader":
        header = decode_json_payload(payload)
        version = header.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {version!r}")
        op = header.get("op")
        if op not in OPS:
            raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
        request_id = header.get("id")
        if not isinstance(request_id, int) or request_id < 0:
            raise ProtocolError(f"bad request id {request_id!r}")
        payload_size = header.get("payload_size")
        if payload_size is not None and (
            not isinstance(payload_size, int) or payload_size < 0
        ):
            raise ProtocolError(f"bad payload_size {payload_size!r}")
        deadline_ms = header.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, int) or deadline_ms <= 0
        ):
            raise ProtocolError(f"bad deadline_ms {deadline_ms!r}")
        params = header.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("params must be a JSON object")
        return cls(op, request_id, payload_size, deadline_ms, params)
