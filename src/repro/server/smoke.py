"""Self-contained server integration smoke (run by CI).

``python -m repro.server.smoke`` starts a real ``tcgen-serve`` worker
pool as a subprocess on loopback ports, then checks the service
contract end to end:

1. concurrent client roundtrips — compressed bytes must be identical to
   the local :class:`~repro.runtime.engine.TraceEngine` for every preset
   spec, under at least 8 concurrent clients spread across the pool;
2. the HTTP gateway — a compress/decompress roundtrip through
   ``POST /v1/compress`` must produce the same bytes as the framed TCP
   path, ``/healthz`` must report every worker up, and ``/metrics`` must
   carry per-worker labels plus pool aggregates;
3. a deliberately corrupt decompress — must come back as a typed
   corruption error frame, never a closed socket or an internal error;
4. metrics — non-zero request counters and a reported cache hit rate
   after the workload;
5. graceful drain — SIGTERM must let the supervisor exit 0 with the
   advertised "drained, exiting" line.

Exits non-zero on the first violation, printing what broke.
"""

from __future__ import annotations

import argparse
from concurrent.futures import ThreadPoolExecutor
import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.parse
import urllib.request


def _start_daemon(
    extra_args: list[str], want_http: bool = False
) -> tuple[subprocess.Popen, int, int | None]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--stats-interval",
            "2",
            *extra_args,
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    port: int | None = None
    http_port: int | None = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"daemon exited before listening (rc={process.poll()})"
            )
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
        elif "http gateway on" in line:
            http_port = int(line.rsplit(":", 1)[1])
        elif "gateway disabled" in line:
            http_port = None
            want_http = False
        if port is not None and (not want_http or http_port is not None):
            return process, port, http_port
    raise RuntimeError("daemon never printed its listening line(s)")


def _drain_stderr(process: subprocess.Popen) -> str:
    """Keep the daemon's stderr pipe from filling while we work."""
    return process.stderr.read() if process.stderr else ""


def _http(
    method: str, url: str, body: bytes | None = None, timeout: float = 60.0
) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def run_smoke(clients: int = 8, roundtrips: int = 3, workers: int = 2) -> int:
    from repro.client import TraceClient
    from repro.errors import CompressedFormatError
    from repro.runtime.engine import TraceEngine
    from repro.spec import parse_spec
    from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC
    from repro.testing.faults import inject

    import numpy as np

    from repro.tio import VPC_FORMAT, pack_records

    def make_trace(n: int, seed: int) -> bytes:
        rng = np.random.default_rng(seed)
        pcs = (0x1000 + (np.arange(n) % 61) * 4).astype(np.uint64)
        data = (np.cumsum(rng.integers(0, 32, size=n)) + 0x4000_0000).astype(
            np.uint64
        )
        return pack_records(VPC_FORMAT, b"VPC3", [pcs, data])

    failures: list[str] = []
    process, port, http_port = _start_daemon(
        ["--workers", str(workers), "--http-port", "0"], want_http=True
    )
    # A stderr-draining thread keeps the pipe from blocking the daemon.
    stderr_pool = ThreadPoolExecutor(max_workers=1)
    stderr_future = stderr_pool.submit(_drain_stderr, process)
    try:
        specs = {"tcgen_a": TCGEN_A_SPEC, "tcgen_b": TCGEN_B_SPEC}
        locals_ = {
            name: TraceEngine(parse_spec(text)) for name, text in specs.items()
        }
        raw = make_trace(4000, seed=1)
        expected = {
            name: engine.compress(raw, chunk_records="auto")
            for name, engine in locals_.items()
        }

        def worker(index: int) -> list[str]:
            problems = []
            with TraceClient("127.0.0.1", port, retries=10, backoff=0.02) as client:
                for trip in range(roundtrips):
                    for name, text in specs.items():
                        blob = client.compress(text, raw, chunk_records="auto")
                        if blob != expected[name]:
                            problems.append(
                                f"client {index} trip {trip}: {name} bytes differ "
                                f"from local engine"
                            )
                        back = client.decompress(text, blob)
                        if back != raw:
                            problems.append(
                                f"client {index} trip {trip}: {name} roundtrip lossy"
                            )
            return problems

        with ThreadPoolExecutor(max_workers=clients) as pool:
            for result in pool.map(worker, range(clients)):
                failures.extend(result)
        print(
            f"smoke: {clients} clients x {roundtrips} roundtrips x "
            f"{len(specs)} specs across {workers} workers byte-identical: "
            f"{'FAIL' if failures else 'ok'}"
        )

        # HTTP gateway: same bytes as the framed path, plus health/metrics.
        if http_port is not None:
            base = f"http://127.0.0.1:{http_port}"
            query = urllib.parse.urlencode(
                {"preset": "tcgen_a", "chunk_records": "auto"}
            )
            status, headers, blob = _http(
                "POST", f"{base}/v1/compress?{query}", raw
            )
            if status != 200 or blob != expected["tcgen_a"]:
                failures.append(
                    f"gateway compress: status {status}, "
                    f"{len(blob)} bytes (identical="
                    f"{blob == expected['tcgen_a']})"
                )
            status, _, back = _http(
                "POST", f"{base}/v1/decompress?{query}", blob
            )
            if status != 200 or back != raw:
                failures.append(f"gateway decompress: status {status}")
            worker_header = headers.get("X-TCGen-Worker", "")
            status, _, body = _http("GET", f"{base}/healthz", timeout=15)
            health_doc = json.loads(body)
            if status != 200 or health_doc.get("workers_up") != workers:
                failures.append(f"gateway /healthz: {status} {health_doc}")
            status, _, body = _http("GET", f"{base}/metrics", timeout=15)
            metrics_text = body.decode()
            if 'worker="0"' not in metrics_text:
                failures.append("gateway /metrics missing worker labels")
            if "tcgen_pool_requests_ok" not in metrics_text:
                failures.append("gateway /metrics missing pool aggregates")
            print(
                "smoke: http gateway roundtrip identical, served by worker "
                f"{worker_header!r}; /healthz + /metrics: "
                f"{'FAIL' if failures else 'ok'}"
            )

        # Deliberately corrupt decompress: typed error, connection survives.
        with TraceClient("127.0.0.1", port, retries=4, backoff=0.02) as client:
            damaged, fault = inject(expected["tcgen_a"], "bitflip", seed=3)
            try:
                client.decompress(TCGEN_A_SPEC, damaged)
                failures.append("corrupt decompress did not raise")
            except CompressedFormatError:
                print(f"smoke: corrupt decompress ({fault}) -> typed error: ok")
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    f"corrupt decompress raised {type(exc).__name__}: {exc}"
                )
            health = client.health()
            metrics = client.metrics_text()
            if 'tcgen_requests_total{op="compress",status="ok"}' not in metrics:
                failures.append("metrics exposition missing request counters")
            if "tcgen_compressor_cache_hits_total" not in metrics:
                failures.append("metrics exposition missing cache hit counters")
            print(
                f"smoke: worker {health.get('worker')} health "
                f"ok={health.get('requests_ok')} "
                f"cache_hit_rate={health.get('cache_hit_rate')}"
            )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            returncode = -9
            failures.append("daemon did not drain within 30s of SIGTERM")
        stderr_text = stderr_future.result(timeout=10)
        stderr_pool.shutdown()

    if returncode != 0:
        failures.append(f"daemon exited {returncode}, expected 0")
    if "drained, exiting" not in stderr_text:
        failures.append("daemon never logged its drain line")
    if "stats uptime_s=" not in stderr_text:
        failures.append("daemon never logged a stats line (--stats-interval)")
    print(f"smoke: SIGTERM drain rc={returncode}: {'FAIL' if returncode else 'ok'}")

    for failure in failures:
        print(f"VIOLATION: {failure}")
    print(f"server smoke: {len(failures)} violations")
    return 1 if failures else 0


def run_stream_smoke(producers: int = 2, workers: int = 2) -> int:
    """Concurrent ``stream-compress`` producers against a worker pool.

    Each producer appends its trace in flushed batches over a live
    session; the finished archives must be byte-identical to a local
    :class:`~repro.streaming.StreamingCompressor` run with the same
    flush boundaries, and a SIGTERM drain must exit 0.
    """
    import io
    import shutil
    import tempfile

    import numpy as np

    from repro.client import TraceClient
    from repro.runtime.engine import TraceEngine
    from repro.spec import parse_spec
    from repro.spec.presets import TCGEN_A_SPEC
    from repro.tio import VPC_FORMAT, pack_records

    spec = parse_spec(TCGEN_A_SPEC)
    header = spec.header_bits // 8
    record = sum(f.bits for f in spec.fields) // 8
    batch_records = 250
    chunk_records = 512

    def make_trace(n: int, seed: int) -> bytes:
        rng = np.random.default_rng(seed)
        pcs = (0x1000 + (np.arange(n) % 61) * 4).astype(np.uint64)
        data = (np.cumsum(rng.integers(0, 32, size=n)) + 0x4000_0000).astype(
            np.uint64
        )
        return pack_records(VPC_FORMAT, b"VPC3", [pcs, data])

    def batches(raw: bytes) -> list[bytes]:
        step = batch_records * record
        cuts = [0, *range(header + step, len(raw), step), len(raw)]
        return [raw[a:b] for a, b in zip(cuts, cuts[1:])]

    def local_archive(raw: bytes) -> bytes:
        sink = io.BytesIO()
        stream = TraceEngine(spec).open_stream(sink, chunk_records=chunk_records)
        for piece in batches(raw):
            stream.append(piece)
            stream.flush()
        stream.close()
        return sink.getvalue()

    failures: list[str] = []
    stream_dir = tempfile.mkdtemp(prefix="tcgen-stream-smoke-")
    process, port, _ = _start_daemon(
        ["--workers", str(workers), "--no-http", "--stream-dir", stream_dir]
    )
    stderr_pool = ThreadPoolExecutor(max_workers=1)
    stderr_future = stderr_pool.submit(_drain_stderr, process)
    try:
        traces = {
            f"producer-{index}": make_trace(3000, seed=50 + index)
            for index in range(producers)
        }

        def produce(name: str) -> list[str]:
            problems = []
            raw = traces[name]
            with TraceClient("127.0.0.1", port, retries=10, backoff=0.05) as c:
                stream = c.open_stream(
                    TCGEN_A_SPEC, name, chunk_records=chunk_records
                )
                acked = 0
                for piece in batches(raw):
                    stream.append(piece)
                    mark = stream.flush()
                    if mark.records < acked:
                        problems.append(f"{name}: watermark went backwards")
                    acked = mark.records
                final = stream.close()
                if final.records != (len(raw) - header) // record:
                    problems.append(
                        f"{name}: closed at {final.records} records, "
                        f"expected {(len(raw) - header) // record}"
                    )
            with open(f"{stream_dir}/{name}.tc4", "rb") as handle:
                blob = handle.read()
            if blob != local_archive(raw):
                problems.append(f"{name}: archive differs from local streaming run")
            if TraceEngine(spec).decompress(blob) != raw:
                problems.append(f"{name}: archive does not roundtrip")
            return problems

        with ThreadPoolExecutor(max_workers=producers) as pool:
            for result in pool.map(produce, traces):
                failures.extend(result)
        print(
            f"stream smoke: {producers} producers across {workers} workers "
            f"byte-identical: {'FAIL' if failures else 'ok'}"
        )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            returncode = -9
            failures.append("daemon did not drain within 30s of SIGTERM")
        stderr_text = stderr_future.result(timeout=10)
        stderr_pool.shutdown()
        shutil.rmtree(stream_dir, ignore_errors=True)

    if returncode != 0:
        failures.append(f"daemon exited {returncode}, expected 0")
    if "drained, exiting" not in stderr_text:
        failures.append("daemon never logged its drain line")
    print(f"stream smoke: SIGTERM drain rc={returncode}: {'FAIL' if returncode else 'ok'}")

    for failure in failures:
        print(f"VIOLATION: {failure}")
    print(f"stream smoke: {len(failures)} violations")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Trace-compression-service integration smoke (used by CI)."
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--roundtrips", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run the streaming-session smoke (concurrent stream-compress "
        "producers against the pool) instead of the request/response smoke",
    )
    args = parser.parse_args(argv)
    if args.stream:
        return run_stream_smoke(producers=args.clients, workers=args.workers)
    return run_smoke(
        clients=args.clients, roundtrips=args.roundtrips, workers=args.workers
    )


if __name__ == "__main__":
    raise SystemExit(main())
