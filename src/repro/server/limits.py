"""Resource limits and tunables for the trace-compression daemon.

Every limit exists to keep one hostile or unlucky client from taking the
server down: payload caps bound memory, the admission queue bounds
concurrent work (everything past it gets an explicit backpressure
response instead of unbounded latency), deadlines bound time, and the
read timeout bounds how long a stalled upload may pin a queue slot.
Container-level hostile-metadata limits (``max_chunk_bytes``) are reused
from :mod:`repro.tio.container` so the service enforces exactly the same
decode hardening as the local library.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
import os

from repro.runtime.parallel import available_parallelism
from repro.server.protocol import DEFAULT_HTTP_PORT, DEFAULT_PORT
from repro.tio.container import DEFAULT_MAX_CHUNK_BYTES


def _default_exec_workers() -> int:
    """Executor threads: enough to keep cores busy, bounded for fairness."""
    return min(8, max(2, available_parallelism()))


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``tcgen-serve`` can be tuned with.

    The defaults are safe for a loopback development server; production
    deployments mostly raise ``queue_limit`` and ``exec_workers`` to
    match provisioned CPU, and ``max_payload_bytes`` to their largest
    trace.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT

    #: Upper bound on requests admitted at once (queued + executing).
    #: Request number ``queue_limit + 1`` receives a ``backpressure``
    #: error with a retry-after hint instead of waiting unboundedly.
    queue_limit: int = 32

    #: Threads in the blocking-work executor (compression kernels,
    #: codecs).  Admitted requests past this count wait in the queue.
    exec_workers: int = field(default_factory=_default_exec_workers)

    #: ``workers=`` handed to the engine per request (thread fan-out of
    #: the codec stage).  1 serializes within a request and lets
    #: cross-request parallelism come from ``exec_workers``; output bytes
    #: are identical either way.
    engine_workers: int = 1

    #: Kernel-stage backend for every request: ``"auto"`` uses the
    #: in-process compiled native kernels when a C compiler is available
    #: and falls back to Python otherwise; ``"python"``/``"native"``
    #: force one side.  Output bytes are identical either way — the
    #: resolved backend is visible as the ``backend`` label on the
    #: ``tcgen_backend_requests_total`` metric and in ``health``.
    backend: str = "auto"

    #: Generated-compressor cache entries (keyed by canonical spec hash
    #: + codec + backend).  Small: a resolved model is a few MB of tables.
    cache_size: int = 8

    #: Hard cap on one request's payload bytes.
    max_payload_bytes: int = 256 * 1024 * 1024

    #: Hard cap on the embedded specification text.
    max_spec_bytes: int = 64 * 1024

    #: Deadline applied when the client does not send one, and the cap
    #: applied when it does (seconds).
    default_deadline_s: float = 300.0
    max_deadline_s: float = 3600.0

    #: How long the server waits for the next frame of an in-progress
    #: request before failing it (stalled upload holding a queue slot).
    read_timeout_s: float = 60.0

    #: How long SIGTERM waits for in-flight requests before forcing exit.
    drain_timeout_s: float = 30.0

    #: Retry-after hint handed out with backpressure errors (seconds).
    retry_after_s: float = 0.1

    #: Per-section decode cap reused from the container hardening layer.
    max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES

    #: Emit a structured stats log line every this many seconds (0 = off).
    stats_interval_s: float = 0.0

    # -- worker pool (repro.server.supervisor) ---------------------------

    #: Worker processes in the pool.  0 = one per available CPU.  Each
    #: worker is a full asyncio daemon accepting on the shared port
    #: (SO_REUSEPORT when available, shared-socket pre-fork otherwise).
    workers: int = 0

    #: This process's position in the pool; ``None`` outside a pool.
    #: Set by the supervisor, surfaced in ``health``, response headers,
    #: and the ``[wN]`` stats-line prefix.
    worker_id: int | None = None

    #: HTTP gateway bind port (0 picks a free port); ``http_enabled``
    #: turns the gateway off entirely.
    http_port: int = DEFAULT_HTTP_PORT
    http_enabled: bool = True

    #: Engines to rebuild from the shared disk cache at worker startup
    #: (0 = lazy only).  Bounded by ``cache_size`` either way.
    preload_engines: int = 0

    #: Publish/consult the disk-backed second-level engine cache.
    engine_disk_cache: bool = True

    #: Crashed-worker restart backoff: first delay, doubling to the cap;
    #: reset after a worker stays up ``restart_reset_s``.
    restart_backoff_s: float = 0.2
    restart_backoff_max_s: float = 5.0
    restart_reset_s: float = 30.0

    # -- streaming ingestion (the stream-compress op) ---------------------

    #: Directory holding the durable ``stream-compress`` archives.  Empty
    #: selects a per-user directory under the system temp dir; every
    #: worker in a pool must see the same directory, which is what lets a
    #: client resume a stream through whichever worker accepts the
    #: reconnect.
    stream_dir: str = ""

    #: ``os.fsync`` after every stream flush, so acked watermarks survive
    #: power loss and not just process death.  ``False`` trades that for
    #: latency (the ack then promises the bytes reached the kernel).
    stream_fsync: bool = True

    def resolved_stream_dir(self) -> str:
        """The concrete stream directory (empty means the temp default)."""
        if self.stream_dir:
            return self.stream_dir
        import getpass
        import tempfile

        try:
            user = getpass.getuser()
        except (KeyError, OSError):  # pragma: no cover - no passwd entry
            user = str(os.getuid()) if hasattr(os, "getuid") else "user"
        return os.path.join(tempfile.gettempdir(), f"tcgen-streams-{user}")

    def resolved_workers(self) -> int:
        """The concrete pool size (``workers=0`` means per-CPU)."""
        return self.workers if self.workers > 0 else available_parallelism()

    def validated(self) -> "ServerConfig":
        """Clamp obviously broken values instead of crashing at runtime."""
        cfg = self
        if cfg.queue_limit < 1:
            cfg = replace(cfg, queue_limit=1)
        if cfg.exec_workers < 1:
            cfg = replace(cfg, exec_workers=1)
        if cfg.cache_size < 1:
            cfg = replace(cfg, cache_size=1)
        if cfg.engine_workers < 0:
            cfg = replace(cfg, engine_workers=1)
        if cfg.backend not in ("auto", "python", "numpy", "native"):
            cfg = replace(cfg, backend="auto")
        if cfg.workers < 0:
            cfg = replace(cfg, workers=0)
        if cfg.preload_engines < 0:
            cfg = replace(cfg, preload_engines=0)
        if cfg.restart_backoff_s <= 0:
            cfg = replace(cfg, restart_backoff_s=0.2)
        if cfg.restart_backoff_max_s < cfg.restart_backoff_s:
            cfg = replace(cfg, restart_backoff_max_s=cfg.restart_backoff_s)
        return cfg


def config_from_env(base: ServerConfig | None = None) -> ServerConfig:
    """Overlay ``TCGEN_SERVE_*`` environment variables on ``base``.

    Recognized: ``TCGEN_SERVE_HOST``, ``TCGEN_SERVE_PORT``,
    ``TCGEN_SERVE_QUEUE_LIMIT``, ``TCGEN_SERVE_EXEC_WORKERS``,
    ``TCGEN_SERVE_MAX_PAYLOAD_MB``, ``TCGEN_SERVE_BACKEND``,
    ``TCGEN_SERVE_WORKERS``, ``TCGEN_SERVE_HTTP_PORT`` (``off``
    disables the gateway), ``TCGEN_SERVE_STREAM_DIR``.  Command-line
    flags win over the environment; the environment wins over defaults.
    """
    cfg = base or ServerConfig()
    env = os.environ
    if "TCGEN_SERVE_HOST" in env:
        cfg = replace(cfg, host=env["TCGEN_SERVE_HOST"])
    if "TCGEN_SERVE_BACKEND" in env:
        cfg = replace(cfg, backend=env["TCGEN_SERVE_BACKEND"])
    if "TCGEN_SERVE_STREAM_DIR" in env:
        cfg = replace(cfg, stream_dir=env["TCGEN_SERVE_STREAM_DIR"])
    if env.get("TCGEN_SERVE_HTTP_PORT", "").lower() in ("off", "none", "disabled"):
        cfg = replace(cfg, http_enabled=False)
    for name, attr in (
        ("TCGEN_SERVE_PORT", "port"),
        ("TCGEN_SERVE_QUEUE_LIMIT", "queue_limit"),
        ("TCGEN_SERVE_EXEC_WORKERS", "exec_workers"),
        ("TCGEN_SERVE_WORKERS", "workers"),
        ("TCGEN_SERVE_HTTP_PORT", "http_port"),
    ):
        if name in env:
            try:
                cfg = replace(cfg, **{attr: int(env[name])})
            except ValueError:
                pass
    if "TCGEN_SERVE_MAX_PAYLOAD_MB" in env:
        try:
            cfg = replace(
                cfg, max_payload_bytes=int(env["TCGEN_SERVE_MAX_PAYLOAD_MB"]) << 20
            )
        except ValueError:
            pass
    return cfg.validated()
