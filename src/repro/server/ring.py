"""Consistent-hash routing of spec-hashes to pool workers.

The worker pool (:mod:`repro.server.supervisor`) keeps one built engine
hot in exactly one process: the HTTP gateway hashes each request's
canonical-spec key onto a :class:`HashRing` and proxies the request to
the owning worker, so a spec's predictor tables and compiled native
kernel are resident in a single process instead of being rebuilt in all
of them.  Consistent hashing (a sorted circle of replica points per
worker) keeps that assignment stable as workers crash and restart:
removing one worker reassigns only the keys it owned, everything else
stays where it is.

Keys are hex strings (the canonical-spec-hash of
:class:`repro.server.handlers.CompressorCache`); worker identities are
small integers.  The ring is deterministic — the same member set always
produces the same assignment, on every process that builds it — which is
what lets the gateway, the supervisor, and tests agree on ownership
without coordination.
"""

from __future__ import annotations

from bisect import bisect_right
import hashlib

#: Replica points per worker.  128 keeps the assignment balanced within
#: a few percent for small pools while the ring stays tiny (N*128 ints).
DEFAULT_REPLICAS = 128


def _point(material: str) -> int:
    """One ring position: the first 8 bytes of SHA-256, as an int."""
    return int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash circle mapping string keys to worker ids."""

    def __init__(self, workers=(), replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: list[int] = []
        self._members: set[int] = set()
        for worker in workers:
            self.add(worker)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, worker: int) -> bool:
        return worker in self._members

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"worker:{worker}:{replica}"), worker)
            for worker in self._members
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def add(self, worker: int) -> None:
        """Add a worker (idempotent)."""
        if worker in self._members:
            return
        self._members.add(worker)
        self._rebuild()

    def remove(self, worker: int) -> None:
        """Remove a worker (idempotent); its keys move to the successors."""
        if worker not in self._members:
            return
        self._members.discard(worker)
        self._rebuild()

    def lookup(self, key: str) -> int:
        """The worker owning ``key``.  Raises on an empty ring."""
        if not self._points:
            raise LookupError("hash ring has no members")
        index = bisect_right(self._points, _point(f"key:{key}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> list[int]:
        """Every member ordered by ring distance from ``key``.

        The first entry is :meth:`lookup`'s answer; the rest are the
        fallback order the gateway walks when the owner is down, so a
        key's traffic lands deterministically on the *same* backup.
        """
        if not self._points:
            return []
        index = bisect_right(self._points, _point(f"key:{key}"))
        seen: list[int] = []
        for offset in range(len(self._points)):
            owner = self._owners[(index + offset) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._members):
                    break
        return seen
