"""CLI entry: ``python -m repro.server`` starts the daemon."""

from repro.server.daemon import serve_main

raise SystemExit(serve_main())
