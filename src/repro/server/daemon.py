"""The ``tcgen-serve`` asyncio TCP daemon.

Architecture: the event loop owns all I/O and admission control; every
op's blocking work (spec parsing, prediction kernels, codecs) runs on a
bounded thread executor.  One connection handles one request at a time
(requests on a connection are strictly ordered); concurrency comes from
concurrent connections, bounded by the admission queue.

A :class:`TraceServer` is one *worker*: a single process, a single
event loop.  ``tcgen-serve`` itself starts a pool of them through
:mod:`repro.server.supervisor` — each worker runs this exact daemon on
a shared SO_REUSEPORT listening socket plus a private control socket
the HTTP gateway routes through.  Inside a pool the worker knows its
position (``config.worker_id``): it tags CONTINUE/RESPONSE headers and
stats lines with it and leaves the canonical ``listening``/``drained``
stderr lines to the supervisor.

Robustness model, in the order a request meets it:

1. **framing** — every frame is validated (magic, type, length caps)
   before allocation; a malformed frame ends the connection with a typed
   error frame;
2. **admission** — at most ``queue_limit`` requests are in flight; the
   next one is refused with an explicit ``backpressure`` error carrying
   a retry-after hint, *before* any payload bytes move (the CONTINUE
   handshake);
3. **payload caps** — declared sizes are rejected up front, streamed
   sizes enforced cumulatively, stalled uploads fail after
   ``read_timeout_s`` so they cannot pin a queue slot;
4. **deadlines** — handler execution is bounded per request; a fired
   deadline returns a ``deadline_exceeded`` error frame, sets the
   request's cancel flag (the engine aborts at the next chunk boundary
   via :func:`repro.runtime.parallel.check_cancel`), and *keeps the
   connection usable*;
5. **typed errors** — library exceptions map onto stable protocol codes
   (:func:`repro.server.protocol.code_for_exception`), so corruption in
   a ``decompress`` is a ``checksum``/``truncated``/``corrupt`` error
   frame, never a closed socket;
6. **drain** — SIGTERM/SIGINT stop the listener, let in-flight requests
   finish (bounded by ``drain_timeout_s``), then exit 0.  Open
   ``stream-compress`` sessions are flushed durably at a chunk-frame
   boundary and answered ``shutting_down`` so their clients reconnect
   and resume from the acked watermark.
"""

from __future__ import annotations

import argparse
import asyncio
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
import signal
import socket as socket_module
import sys
import time

from repro.errors import ProtocolError, ReproError
from repro.server import protocol
from repro.server.handlers import Handlers
from repro.server.limits import ServerConfig, config_from_env
from repro.server.metrics import ServerMetrics
from repro.server.protocol import RequestHeader, code_for_exception

#: Precomputed empty END frame — terminates every response payload.
_END_FRAME = protocol.encode_frame(protocol.END)


class _FatalConnectionError(Exception):
    """Wire desynchronization: report ``code``/``message``, then hang up."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _ConnectionState:
    """Per-connection bookkeeping: drain inspection plus the hot-path
    scratch state (reused frame-header buffer, spec-hash memo)."""

    __slots__ = ("busy", "memo", "scratch")

    def __init__(self) -> None:
        self.busy = False
        #: (spec_text, codec, backend) -> canonical key hash, so repeat
        #: requests on one connection skip parse/canonicalize/SHA-256.
        self.memo: OrderedDict = OrderedDict()
        #: Reused DATA/END frame-header buffer for response streaming.
        self.scratch = bytearray(protocol.HEADER_SIZE)


class TraceServer:
    """The trace-compression service (see module docstring)."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = (config or ServerConfig()).validated()
        self.metrics = ServerMetrics()
        self.handlers = Handlers(self.config, self.metrics)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.exec_workers, thread_name_prefix="tcgen-serve"
        )
        self._servers: list[asyncio.base_events.Server] = []
        self._admitted = 0
        self._draining = False
        self._drain_requested: asyncio.Event | None = None
        self._connections: dict[asyncio.Task, _ConnectionState] = {}
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — pick a free one)."""
        if not self._servers:
            raise RuntimeError("server not started")
        return self._servers[0].sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(
        self, socks: list[socket_module.socket] | None = None
    ) -> None:
        """Bind and begin accepting.

        ``socks`` hands over pre-bound listening sockets (the supervisor
        binds SO_REUSEPORT + control sockets before forking); without it
        the server binds ``config.host:config.port`` itself.
        """
        self._drain_requested = asyncio.Event()
        if socks:
            self._servers = [
                await asyncio.start_server(self._on_connection, sock=sock)
                for sock in socks
            ]
        else:
            self._servers = [
                await asyncio.start_server(
                    self._on_connection, self.config.host, self.config.port
                )
            ]

    def request_shutdown(self) -> None:
        """Begin graceful drain.  Safe to call from a signal handler."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(self, socks: list[socket_module.socket] | None = None) -> int:
        """Start, serve until shutdown is requested, drain, and exit."""
        loop = asyncio.get_running_loop()
        if self.config.preload_engines > 0:
            # Warm-up before accepting: rebuild the hottest engines from
            # the shared disk cache so the first request pays nothing.
            await loop.run_in_executor(
                self._executor,
                self.handlers.cache.preload_from_disk,
                self.config.preload_engines,
            )
        await self.start(socks)
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if self.config.worker_id is None:
            # Pool workers stay quiet: the supervisor owns the canonical
            # ``listening``/``drained`` lines tests and operators parse.
            print(
                f"tcgen-serve: listening on {self.config.host}:{self.port}",
                file=sys.stderr,
                flush=True,
            )
        stats_task = None
        if self.config.stats_interval_s > 0:
            stats_task = asyncio.ensure_future(self._stats_loop())
        await self._drain_requested.wait()
        await self._drain()
        if stats_task is not None:
            stats_task.cancel()
            await asyncio.gather(stats_task, return_exceptions=True)
        if self.config.worker_id is None:
            print("tcgen-serve: drained, exiting", file=sys.stderr, flush=True)
        return 0

    async def _drain(self) -> None:
        """Let in-flight requests finish, then tear everything down."""
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline and any(
            state.busy for state in self._connections.values()
        ):
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._executor.shutdown(wait=False)

    def _stats_tag(self) -> str:
        if self.config.worker_id is None:
            return "tcgen-serve"
        return f"tcgen-serve[w{self.config.worker_id}]"

    async def _stats_loop(self) -> None:
        while not self._drain_requested.is_set():
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._drain_requested.wait()),
                    timeout=self.config.stats_interval_s,
                )
            except asyncio.TimeoutError:
                pass
            snap = self.metrics.snapshot()
            fields = " ".join(f"{key}={value}" for key, value in snap.items())
            # One write() per line: pool workers share the supervisor's
            # stderr pipe, and POSIX only keeps single writes from
            # interleaving, so the line must leave in one syscall.
            sys.stderr.write(
                f"{self._stats_tag()} stats "
                f"uptime_s={time.monotonic() - self._started_at:.1f} {fields}\n"
            )
            sys.stderr.flush()

    # -- frame I/O -----------------------------------------------------------

    async def _read_frame(
        self, reader: asyncio.StreamReader, timeout: float | None
    ) -> tuple[int, bytes] | None:
        """Read one frame; ``None`` on clean EOF at a frame boundary."""

        async def read() -> tuple[int, bytes] | None:
            try:
                header = await reader.readexactly(protocol.HEADER_SIZE)
            except asyncio.IncompleteReadError as exc:
                if not exc.partial:
                    return None
                raise ProtocolError("connection closed mid-frame-header") from exc
            frame_type, length = protocol.decode_header(header)
            try:
                payload = await reader.readexactly(length) if length else b""
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("connection closed mid-frame") from exc
            return frame_type, payload

        if timeout is None:
            return await read()
        try:
            return await asyncio.wait_for(read(), timeout)
        except asyncio.TimeoutError:
            raise _FatalConnectionError(
                "bad_request",
                f"timed out after {timeout:.0f}s waiting for the next frame",
            ) from None

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        request_id: int,
        code: str,
        message: str,
        retry_after_ms: int | None = None,
    ) -> None:
        header = {"id": request_id, "ok": False, "code": code, "message": message}
        if retry_after_ms is not None:
            header["retry_after_ms"] = retry_after_ms
        if self.config.worker_id is not None:
            header["worker"] = self.config.worker_id
        await self._send(writer, protocol.encode_json_frame(protocol.ERROR, header))

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        request_id: int,
        meta: dict,
        payload: bytes,
        state: _ConnectionState | None = None,
    ) -> None:
        header = {
            "id": request_id,
            "ok": True,
            "payload_size": len(payload),
            "meta": meta,
        }
        if self.config.worker_id is not None:
            header["worker"] = self.config.worker_id
        writer.write(protocol.encode_json_frame(protocol.RESPONSE, header))
        # Hot path: stream DATA frames from a reused header buffer and
        # memoryview slices instead of concatenating header + chunk per
        # 256 KiB frame (which copied the whole payload a second time).
        # asyncio transports copy write() data synchronously, so reusing
        # the scratch buffer across frames is safe.
        scratch = (
            state.scratch if state is not None else bytearray(protocol.HEADER_SIZE)
        )
        view = memoryview(payload)
        for start in range(0, len(payload), protocol.DATA_CHUNK):
            chunk = view[start : start + protocol.DATA_CHUNK]
            protocol.pack_header_into(scratch, protocol.DATA, len(chunk))
            writer.write(scratch)
            writer.write(chunk)
        writer.write(_END_FRAME)
        await writer.drain()
        self.metrics.bytes_out.child().inc(len(payload))

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        state = _ConnectionState()
        self._connections[task] = state
        self.metrics.connections.child().inc()
        try:
            while True:
                frame = await self._read_frame(reader, timeout=None)
                if frame is None:
                    break
                frame_type, payload = frame
                state.busy = True
                try:
                    if frame_type != protocol.REQUEST:
                        raise _FatalConnectionError(
                            "bad_request",
                            f"expected a REQUEST frame, got type {frame_type}",
                        )
                    request = RequestHeader.decode(payload)
                    await self._serve_request(reader, writer, request, state)
                finally:
                    state.busy = False
        except _FatalConnectionError as exc:
            try:
                await self._send_error(writer, 0, exc.code, str(exc))
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        except ProtocolError as exc:
            try:
                await self._send_error(writer, 0, "bad_request", str(exc))
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._connections.pop(task, None)
            self.metrics.connections.child().dec()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _resolve_deadline(self, request: RequestHeader) -> float:
        if request.deadline_ms is None:
            return self.config.default_deadline_s
        return min(request.deadline_ms / 1000.0, self.config.max_deadline_s)

    async def _read_payload(
        self, reader: asyncio.StreamReader, declared: int | None
    ) -> bytes:
        """Read DATA frames up to END, enforcing size caps cumulatively."""
        cap = self.config.max_payload_bytes
        if declared is not None:
            cap = min(cap, declared)
        chunks: list[bytes] = []
        total = 0
        while True:
            frame = await self._read_frame(reader, self.config.read_timeout_s)
            if frame is None:
                raise _FatalConnectionError(
                    "bad_request", "connection closed mid-payload"
                )
            frame_type, data = frame
            if frame_type == protocol.END:
                break
            if frame_type != protocol.DATA:
                raise _FatalConnectionError(
                    "bad_request",
                    f"expected DATA or END during payload, got type {frame_type}",
                )
            total += len(data)
            if total > cap:
                raise _FatalConnectionError(
                    "payload_too_large",
                    f"payload exceeds {cap} bytes",
                )
            chunks.append(data)
        if declared is not None and total != declared:
            raise _FatalConnectionError(
                "bad_request",
                f"payload declared {declared} bytes but streamed {total}",
            )
        return b"".join(chunks)

    async def _serve_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: RequestHeader,
        state: _ConnectionState,
    ) -> None:
        start = time.monotonic()
        op, request_id = request.op, request.request_id
        status = "ok"
        try:
            if op in protocol.PAYLOADLESS_OPS:
                meta, payload = self._payloadless(op)
                await self._send_response(writer, request_id, meta, payload, state)
                return

            if self._draining:
                status = "shutting_down"
                await self._send_error(
                    writer, request_id, "shutting_down", "server is draining"
                )
                return
            if (
                request.payload_size is not None
                and request.payload_size > self.config.max_payload_bytes
            ):
                status = "payload_too_large"
                await self._send_error(
                    writer,
                    request_id,
                    "payload_too_large",
                    f"declared payload of {request.payload_size} bytes exceeds "
                    f"the {self.config.max_payload_bytes}-byte cap",
                )
                return
            if self._admitted >= self.config.queue_limit:
                status = "backpressure"
                self.metrics.backpressure.child().inc()
                await self._send_error(
                    writer,
                    request_id,
                    "backpressure",
                    f"request queue full ({self.config.queue_limit} in flight)",
                    retry_after_ms=int(self.config.retry_after_s * 1000),
                )
                return

            self._admitted += 1
            self.metrics.queue_depth.child().set(self._admitted)
            try:
                if op == "stream-compress":
                    # Long-lived session: holds its queue slot until the
                    # client ends it (or the server drains).
                    status = await self._serve_stream(reader, writer, request, state)
                else:
                    go_ahead = {"id": request_id}
                    if self.config.worker_id is not None:
                        go_ahead["worker"] = self.config.worker_id
                    await self._send(
                        writer, protocol.encode_json_frame(protocol.CONTINUE, go_ahead)
                    )
                    payload = await self._read_payload(reader, request.payload_size)
                    self.metrics.bytes_in.child().inc(len(payload))
                    status = await self._execute(writer, request, payload, state)
            finally:
                self._admitted -= 1
                self.metrics.queue_depth.child().set(self._admitted)
        finally:
            self.metrics.observe_request(op, status, time.monotonic() - start)

    async def _execute(
        self,
        writer: asyncio.StreamWriter,
        request: RequestHeader,
        payload: bytes,
        state: _ConnectionState,
    ) -> str:
        """Run the handler under the request deadline; returns the status."""
        import threading

        deadline = self._resolve_deadline(request)
        cancel_event = threading.Event()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            self.handlers.run,
            request.op,
            request.params,
            payload,
            cancel_event.is_set,
            state.memo,
        )
        try:
            meta, result = await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            cancel_event.set()
            # The worker thread aborts at its next chunk boundary; swallow
            # its eventual OperationCancelled so asyncio never logs an
            # unretrieved-exception warning.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self.metrics.deadlines.child().inc()
            await self._send_error(
                writer,
                request.request_id,
                "deadline_exceeded",
                f"request deadline of {deadline:.3f}s exceeded",
            )
            return "deadline_exceeded"
        except (ReproError, ValueError) as exc:
            code = code_for_exception(exc)
            await self._send_error(writer, request.request_id, code, str(exc))
            return code
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the daemon
            await self._send_error(
                writer,
                request.request_id,
                "internal",
                f"{type(exc).__name__}: {exc}",
            )
            return "internal"
        await self._send_response(writer, request.request_id, meta, result, state)
        return "ok"

    # -- streaming ingestion -------------------------------------------------

    async def _durable_call(self, stream, fn, *args):
        """Run a blocking stream mutation on the executor, counting the
        records it made durable."""
        loop = asyncio.get_running_loop()
        before = stream.watermark.records
        result = await loop.run_in_executor(self._executor, fn, *args)
        gained = stream.watermark.records - before
        if gained > 0:
            self.metrics.stream_records.child().inc(gained)
        return result

    async def _serve_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: RequestHeader,
        state: _ConnectionState,
    ) -> str:
        """One ``stream-compress`` session (see the protocol docstring).

        The loop interleaves socket reads with durable work: DATA frames
        append raw record bytes (the server-side flush policy may fire
        inside the append), every FLUSH is answered with an ACK carrying
        the new durable watermark, and END yields the final RESPONSE.
        Latency flushes ride on the read timeout; a drain request
        interrupts the read, flushes at a frame boundary, and answers
        ``shutting_down`` so the client can reconnect and resume against
        the next worker.  All durable work runs on the executor — the
        event loop never blocks on compression or fsync.
        """
        from repro.server.streams import StreamBusyError

        loop = asyncio.get_running_loop()
        request_id = request.request_id
        try:
            session = await loop.run_in_executor(
                self._executor, self.handlers.open_stream, request.params, state.memo
            )
        except StreamBusyError as exc:
            await self._send_error(
                writer,
                request_id,
                "stream_busy",
                str(exc),
                retry_after_ms=int(self.config.retry_after_s * 1000),
            )
            return "stream_busy"
        except (ReproError, ValueError) as exc:
            code = code_for_exception(exc)
            await self._send_error(writer, request_id, code, str(exc))
            return code
        stream = session.compressor
        self.metrics.streams_active.child().inc()
        read_task: asyncio.Task | None = None
        drain_task = asyncio.ensure_future(self._drain_requested.wait())
        deadline = time.monotonic() + self._resolve_deadline(request)
        total_in = 0
        closed = False
        try:
            hello = {
                "id": request_id,
                "watermark": stream.watermark.as_dict(),
                "resumed": session.resumed,
            }
            if self.config.worker_id is not None:
                hello["worker"] = self.config.worker_id
            await self._send(
                writer, protocol.encode_json_frame(protocol.CONTINUE, hello)
            )

            last_activity = time.monotonic()
            while True:
                now = time.monotonic()
                if now >= deadline:
                    await self._durable_call(stream, stream.flush)
                    self.metrics.deadlines.child().inc()
                    await self._send_error(
                        writer,
                        request_id,
                        "deadline_exceeded",
                        "stream session deadline exceeded; pending records "
                        "were flushed durably — reconnect and resume",
                    )
                    return "deadline_exceeded"
                stall_at = last_activity + self.config.read_timeout_s
                wake = min(deadline, stall_at)
                flush_at = stream.next_deadline()
                if flush_at is not None:
                    wake = min(wake, flush_at)
                if read_task is None:
                    read_task = asyncio.ensure_future(self._read_frame(reader, None))
                done, _ = await asyncio.wait(
                    {read_task, drain_task},
                    timeout=max(0.0, wake - now),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if drain_task in done:
                    mark = await self._durable_call(stream, stream.flush)
                    self.metrics.stream_flushes.child().inc()
                    await self._send_error(
                        writer,
                        request_id,
                        "shutting_down",
                        "server is draining; stream is durable through "
                        f"record {mark.records} — reconnect and resume",
                    )
                    return "shutting_down"
                if read_task not in done:
                    # Timed out.  The pending read stays pending (a frame
                    # may be half-received; cancelling it would tear the
                    # wire): run the latency flush, reap a silent client,
                    # or just recompute the deadlines.
                    if stream.latency_due():
                        await self._durable_call(stream, stream.flush)
                        self.metrics.stream_flushes.child().inc()
                    elif time.monotonic() >= stall_at:
                        raise _FatalConnectionError(
                            "bad_request",
                            "stream stalled: no frame within "
                            f"{self.config.read_timeout_s:.0f}s",
                        )
                    continue
                frame = read_task.result()
                read_task = None
                last_activity = time.monotonic()
                if frame is None:
                    # Client vanished without END: crash semantics — the
                    # durable prefix survives, nothing past the last ack
                    # was promised.
                    return "disconnected"
                frame_type, payload = frame
                if frame_type == protocol.DATA:
                    if closed:
                        raise _FatalConnectionError(
                            "bad_request", "DATA frame after the stream was closed"
                        )
                    total_in += len(payload)
                    if total_in > self.config.max_payload_bytes:
                        raise _FatalConnectionError(
                            "payload_too_large",
                            f"stream session exceeds {self.config.max_payload_bytes}"
                            " raw bytes",
                        )
                    self.metrics.bytes_in.child().inc(len(payload))
                    await self._durable_call(stream, stream.append, payload)
                    continue
                if frame_type == protocol.FLUSH:
                    if closed:
                        raise _FatalConnectionError(
                            "bad_request", "FLUSH frame after the stream was closed"
                        )
                    directive = (
                        protocol.decode_json_payload(payload) if payload else {}
                    )
                    if directive.get("close"):
                        mark = await self._durable_call(stream, stream.close)
                        closed = True
                        self.metrics.streams_closed.child().inc()
                    else:
                        mark = await self._durable_call(stream, stream.flush)
                    self.metrics.stream_flushes.child().inc()
                    ack = {
                        "id": request_id,
                        "watermark": mark.as_dict(),
                        "closed": closed,
                    }
                    if directive.get("seq") is not None:
                        ack["seq"] = directive["seq"]
                    await self._send(
                        writer, protocol.encode_json_frame(protocol.ACK, ack)
                    )
                    continue
                if frame_type == protocol.END:
                    meta = {
                        "stream": session.stream_id,
                        "watermark": stream.watermark.as_dict(),
                        "closed": closed,
                        "resumed": session.resumed,
                        "raw_bytes": total_in,
                    }
                    await self._send_response(writer, request_id, meta, b"", state)
                    return "ok"
                raise _FatalConnectionError(
                    "bad_request",
                    f"unexpected frame type {frame_type} during a stream session",
                )
        except (ReproError, ValueError) as exc:
            # Typed failure mid-session (e.g. close on a partial record).
            # The durable prefix is intact; the client reconnects and
            # resumes from the recovered watermark.
            code = code_for_exception(exc)
            try:
                await self._send_error(writer, request_id, code, str(exc))
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            return code
        finally:
            drain_task.cancel()
            if read_task is not None:
                read_task.cancel()
                await asyncio.gather(read_task, return_exceptions=True)
            self.metrics.streams_active.child().dec()
            await loop.run_in_executor(self._executor, session.release)

    def _payloadless(self, op: str) -> tuple[dict, bytes]:
        if op == "metrics":
            return {}, self.metrics.render().encode()
        from repro import __version__

        snap = self.metrics.snapshot()
        snap.update(
            {
                "status": "draining" if self._draining else "ok",
                "version": __version__,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "queue_limit": self.config.queue_limit,
                "cached_compressors": len(self.handlers.cache),
                "backend": self.config.backend,
            }
        )
        if self.config.worker_id is not None:
            snap["worker"] = self.config.worker_id
        return snap, b""


# -- CLI entry ---------------------------------------------------------------


def build_config(args: argparse.Namespace) -> ServerConfig:
    cfg = config_from_env()
    overrides = {}
    for attr, value in (
        ("host", args.host),
        ("port", args.port),
        ("queue_limit", args.queue_limit),
        ("exec_workers", args.exec_workers),
        ("engine_workers", args.engine_workers),
        ("cache_size", args.cache_size),
        ("default_deadline_s", args.default_deadline),
        ("read_timeout_s", args.read_timeout),
        ("drain_timeout_s", args.drain_timeout),
        ("stats_interval_s", args.stats_interval),
        ("backend", args.backend),
        ("workers", args.workers),
        ("http_port", args.http_port),
        ("preload_engines", args.preload_engines),
        ("stream_dir", args.stream_dir),
    ):
        if value is not None:
            overrides[attr] = value
    if args.max_payload_mb is not None:
        overrides["max_payload_bytes"] = args.max_payload_mb << 20
    if args.no_http:
        overrides["http_enabled"] = False
    if args.no_disk_cache:
        overrides["engine_disk_cache"] = False
    return replace(cfg, **overrides).validated()


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-serve``."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="tcgen-serve",
        description="Serve trace compression over TCP (framed protocol; "
        "ops: compress, decompress, salvage, analyze, query, health, metrics, "
        "stream-compress) with a pre-fork worker pool and an HTTP/1.1 "
        "gateway.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=None,
        help=f"TCP port (default {protocol.DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes sharing the port via SO_REUSEPORT "
        "(default: one per available CPU)",
    )
    parser.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help=f"HTTP/1.1 gateway port (default {protocol.DEFAULT_HTTP_PORT}; "
        "0 picks a free port)",
    )
    parser.add_argument(
        "--no-http", action="store_true",
        help="disable the HTTP gateway (framed TCP only)",
    )
    parser.add_argument(
        "--preload-engines", type=int, default=None, metavar="N",
        help="engines each worker rebuilds from the shared disk cache "
        "before accepting (default 0: build lazily)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="disable the disk-backed second-level engine cache",
    )
    parser.add_argument(
        "--stream-dir", default=None, metavar="DIR",
        help="directory for durable stream-compress archives (default: "
        "a per-user directory under the system temp dir; must be shared "
        "by every worker in a pool)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="max requests in flight before backpressure (default 32)",
    )
    parser.add_argument(
        "--exec-workers", type=int, default=None, metavar="N",
        help="worker threads executing requests (default: min(8, CPUs))",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=None, metavar="N",
        help="per-request codec-stage workers (default 1; bytes identical)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="compressor-engine LRU entries (default 8)",
    )
    parser.add_argument(
        "--max-payload-mb", type=int, default=None, metavar="MB",
        help="per-request payload cap in MiB (default 256)",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline applied when the client sends none (default 300)",
    )
    parser.add_argument(
        "--read-timeout", type=float, default=None, metavar="SECONDS",
        help="max wait for the next frame of an in-progress request (default 60)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="SIGTERM grace period for in-flight requests (default 30)",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=None, metavar="SECONDS",
        help="log a structured stats line this often (default: off)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "python", "numpy", "native"), default=None,
        help="kernel-stage backend: auto tries the in-process compiled "
        "native kernels, then the numpy columnar kernels when the spec "
        "vectorizes well, then python (default auto; output bytes are "
        "identical either way)",
    )
    args = parser.parse_args(argv)
    config = build_config(args)
    from repro.server.supervisor import run_pool

    try:
        return run_pool(config)
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


if __name__ == "__main__":
    raise SystemExit(serve_main())
