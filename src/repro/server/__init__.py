"""The trace-compression service: a long-lived daemon over the engine.

The library's compression pipeline (spec -> generated compressor ->
container) is consumed over the wire in practice: traces are produced at
an acquisition boundary, compressed near the producer, and fetched by
downstream analyses.  This package turns the one-shot pipeline into a
service:

- :mod:`repro.server.protocol` — the length-prefixed framed wire
  protocol, ops, stable error codes (shared with :mod:`repro.client`);
- :mod:`repro.server.limits` — payload caps, admission-queue bounds,
  deadlines, and the other knobs that keep one client from sinking the
  daemon;
- :mod:`repro.server.metrics` — counters / gauges / latency histograms
  with Prometheus text rendering, served by the ``metrics`` op;
- :mod:`repro.server.handlers` — the blocking op implementations plus
  the LRU cache of built compressor engines (keyed by canonical spec
  hash), backed by the shared disk level;
- :mod:`repro.server.enginecache` — the host-wide disk-backed second
  level of the engine cache (flock + atomic publish, shared with the
  native-artifact cache machinery);
- :mod:`repro.server.daemon` — the asyncio TCP worker, backpressure,
  per-request deadlines, graceful drain;
- :mod:`repro.server.supervisor` — the pre-fork worker pool:
  SO_REUSEPORT listeners, crash-restart with backoff, coordinated
  SIGTERM drain, and the ``tcgen-serve`` process model;
- :mod:`repro.server.ring` — consistent-hash routing of canonical-spec
  hashes to pool workers;
- :mod:`repro.server.httpgw` — the HTTP/1.1 gateway (``/v1/compress``,
  ``/v1/decompress``, ``/healthz``, ``/metrics``) that proxies to
  workers over their control sockets using the ring;
- :mod:`repro.server.smoke` — the self-contained integration smoke CI
  runs (``python -m repro.server.smoke``).

Run ``python -m repro.server`` (or the ``tcgen-serve`` console script)
to start the serving tier; see ``docs/SERVER.md`` for the wire format,
the worker-pool model, and the backpressure/retry contract.
"""

from repro.server.daemon import TraceServer, serve_main
from repro.server.limits import ServerConfig
from repro.server.metrics import MetricsRegistry, ServerMetrics
from repro.server.ring import HashRing
from repro.server.supervisor import Supervisor, run_pool

__all__ = [
    "HashRing",
    "MetricsRegistry",
    "ServerConfig",
    "ServerMetrics",
    "Supervisor",
    "TraceServer",
    "run_pool",
    "serve_main",
]
