"""The trace-compression service: a long-lived daemon over the engine.

The library's compression pipeline (spec -> generated compressor ->
container) is consumed over the wire in practice: traces are produced at
an acquisition boundary, compressed near the producer, and fetched by
downstream analyses.  This package turns the one-shot pipeline into a
service:

- :mod:`repro.server.protocol` — the length-prefixed framed wire
  protocol, ops, stable error codes (shared with :mod:`repro.client`);
- :mod:`repro.server.limits` — payload caps, admission-queue bounds,
  deadlines, and the other knobs that keep one client from sinking the
  daemon;
- :mod:`repro.server.metrics` — counters / gauges / latency histograms
  with Prometheus text rendering, served by the ``metrics`` op;
- :mod:`repro.server.handlers` — the blocking op implementations plus
  the LRU cache of built compressor engines (keyed by canonical spec
  hash);
- :mod:`repro.server.daemon` — the asyncio TCP server, ``tcgen-serve``
  entry point, backpressure, per-request deadlines, graceful drain;
- :mod:`repro.server.smoke` — the self-contained integration smoke CI
  runs (``python -m repro.server.smoke``).

Run ``python -m repro.server`` (or the ``tcgen-serve`` console script)
to start a daemon; see ``docs/SERVER.md`` for the wire format and the
backpressure/retry contract.
"""

from repro.server.daemon import TraceServer, serve_main
from repro.server.limits import ServerConfig
from repro.server.metrics import MetricsRegistry, ServerMetrics

__all__ = [
    "MetricsRegistry",
    "ServerConfig",
    "ServerMetrics",
    "TraceServer",
    "serve_main",
]
