"""Request handlers: the blocking work behind each protocol op.

Handlers run on the daemon's thread executor, so they may block freely;
the asyncio loop never executes compression work.  All state shared
between requests lives in :class:`CompressorCache` (thread-safe LRU of
built engines) — each request gets a shallow copy of the cached engine,
so per-call mutable state (``last_usage``, ``last_report``) is private
to the request while the expensive resolved model and codec are shared.

Every handler returns ``(meta, payload)``: a JSON-safe dict for the
RESPONSE header plus the raw result bytes.  Errors are raised as the
library's typed exceptions; the daemon maps them onto stable protocol
error codes via :func:`repro.server.protocol.code_for_exception`.
"""

from __future__ import annotations

from collections import OrderedDict
import copy
import hashlib
import threading
from typing import Callable

from repro.errors import ProtocolError, SpecError
from repro.runtime.engine import TraceEngine
from repro.server.limits import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.protocol import report_to_dict
from repro.spec import format_spec, parse_spec


class CompressorCache:
    """Thread-safe LRU of built :class:`TraceEngine` templates.

    Keyed by the SHA-256 of the *canonical* spec text plus the codec
    name plus the configured backend, so syntactic variants of the same
    specification share one entry.  ``get`` returns ``(template,
    canonical_hash, hit)``; callers must ``copy.copy`` the template
    before use (see module docstring).
    """

    def __init__(self, capacity: int, metrics: ServerMetrics) -> None:
        self.capacity = max(1, capacity)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, TraceEngine]" = OrderedDict()

    def get(
        self, spec_text: str, codec: str, backend: str = "auto"
    ) -> tuple[TraceEngine, str, bool]:
        # Parse outside the lock: spec errors must not poison the cache,
        # and parsing is cheap next to building predictor tables.
        spec = parse_spec(spec_text)
        canonical = format_spec(spec)
        key_hash = hashlib.sha256(
            canonical.encode() + b"\x00" + codec.encode() + b"\x00" + backend.encode()
        ).hexdigest()
        with self._lock:
            engine = self._entries.get(key_hash)
            if engine is not None:
                self._entries.move_to_end(key_hash)
                self._metrics.cache_hits.child().inc()
                return engine, key_hash, True
        engine = TraceEngine(spec, codec=codec, backend=backend)
        with self._lock:
            # A racing request may have built the same engine; keep the
            # first one so every requester shares a single template.
            existing = self._entries.get(key_hash)
            if existing is not None:
                self._entries.move_to_end(key_hash)
                self._metrics.cache_hits.child().inc()
                return existing, key_hash, True
            self._entries[key_hash] = engine
            self._metrics.cache_misses.child().inc()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._metrics.cache_evictions.child().inc()
        return engine, key_hash, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class Handlers:
    """Dispatch table from op name to blocking handler."""

    def __init__(self, config: ServerConfig, metrics: ServerMetrics) -> None:
        self.config = config
        self.metrics = metrics
        self.cache = CompressorCache(config.cache_size, metrics)

    # -- shared helpers -----------------------------------------------------

    def _engine_for(self, params: dict) -> TraceEngine:
        spec_text = params.get("spec")
        if not isinstance(spec_text, str) or not spec_text:
            raise ProtocolError("missing required string param 'spec'")
        if len(spec_text.encode()) > self.config.max_spec_bytes:
            raise SpecError(
                f"specification text exceeds {self.config.max_spec_bytes} bytes"
            )
        codec = params.get("codec", "bzip2")
        if not isinstance(codec, str):
            raise ProtocolError("param 'codec' must be a string")
        template, _, _ = self.cache.get(spec_text, codec, self.config.backend)
        # Shallow copy: shares the resolved model/codec/format, gives the
        # request private last_usage/last_report slots.
        return copy.copy(template)

    def _count_backend(self, engine: TraceEngine) -> None:
        """Record which kernel stage actually served this request."""
        self.metrics.backend_requests.labels(backend=engine.backend).inc()

    def _workers(self, params: dict) -> int:
        workers = params.get("workers")
        if workers is None:
            return self.config.engine_workers
        if not isinstance(workers, int) or workers < 0:
            raise ProtocolError("param 'workers' must be a non-negative int")
        return min(workers, 16)

    @staticmethod
    def _chunk_records(params: dict):
        chunk_records = params.get("chunk_records")
        if chunk_records is None or chunk_records == "auto":
            return chunk_records
        if not isinstance(chunk_records, int) or chunk_records < 0:
            raise ProtocolError("param 'chunk_records' must be an int or 'auto'")
        return chunk_records

    # -- ops ----------------------------------------------------------------

    def run(
        self,
        op: str,
        params: dict,
        payload: bytes,
        cancel: Callable[[], bool] | None,
    ) -> tuple[dict, bytes]:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise ProtocolError(f"unknown op {op!r}")
        return handler(params, payload, cancel)

    def op_compress(self, params, payload, cancel):
        engine = self._engine_for(params)
        blob = engine.compress(
            payload,
            chunk_records=self._chunk_records(params),
            workers=self._workers(params),
            cancel=cancel,
        )
        self._count_backend(engine)
        return {"raw_size": len(payload), "blob_size": len(blob)}, blob

    def op_decompress(self, params, payload, cancel):
        engine = self._engine_for(params)
        raw = engine.decompress(
            payload,
            workers=self._workers(params),
            mode="strict",
            max_chunk_bytes=self.config.max_chunk_bytes,
            cancel=cancel,
        )
        self._count_backend(engine)
        return {"raw_size": len(raw), "blob_size": len(payload)}, raw

    def op_salvage(self, params, payload, cancel):
        engine = self._engine_for(params)
        raw = engine.decompress(
            payload,
            workers=self._workers(params),
            mode="salvage",
            max_chunk_bytes=self.config.max_chunk_bytes,
            cancel=cancel,
        )
        # Salvage decode always runs the Python kernels (damage diagnosis
        # happens in the interpreter), whatever the configured backend.
        self.metrics.backend_requests.labels(backend="python").inc()
        meta = {"raw_size": len(raw), "blob_size": len(payload)}
        if engine.last_report is not None:
            meta["report"] = report_to_dict(engine.last_report)
        return meta, raw

    def op_analyze(self, params, payload, cancel):
        from repro.analysis import analyze_trace, recommend_spec
        from repro.tio import VPC_FORMAT

        budget = params.get("budget_bytes", 64 << 20)
        if not isinstance(budget, int) or budget <= 0:
            raise ProtocolError("param 'budget_bytes' must be a positive int")
        stats = analyze_trace(VPC_FORMAT, payload)
        spec = recommend_spec(VPC_FORMAT, payload, budget_bytes=budget)
        return {"recommended_spec": format_spec(spec)}, stats.render().encode()
