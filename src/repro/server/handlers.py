"""Request handlers: the blocking work behind each protocol op.

Handlers run on the daemon's thread executor, so they may block freely;
the asyncio loop never executes compression work.  All state shared
between requests lives in :class:`CompressorCache` (thread-safe LRU of
built engines) — each request gets a shallow copy of the cached engine,
so per-call mutable state (``last_usage``, ``last_report``) is private
to the request while the expensive resolved model and codec are shared.

The cache has two levels:

1. the in-process LRU, keyed by the SHA-256 of the canonical spec text
   plus codec plus backend;
2. a host-wide disk level (:mod:`repro.server.enginecache`): every build
   publishes a record under the same key, so sibling workers in a pool
   (and future restarts) recognize an already-tuned spec-hash, skip
   re-canonicalization, and go straight to the shared native-artifact
   cache instead of recompiling.  Workers can preload the hottest
   records at startup so warm-up is paid before the first request.

Connections additionally carry a small *hash memo* (spec text → key
hash), so a client pushing many requests for the same spec down one
connection pays the parse/canonicalize/SHA-256 once, not per request.

Every handler returns ``(meta, payload)``: a JSON-safe dict for the
RESPONSE header plus the raw result bytes.  Errors are raised as the
library's typed exceptions; the daemon maps them onto stable protocol
error codes via :func:`repro.server.protocol.code_for_exception`.
"""

from __future__ import annotations

from collections import OrderedDict
import copy
import hashlib
import threading
from typing import Callable

from repro.errors import ProtocolError, SpecError
from repro.runtime.engine import TraceEngine
from repro.server import enginecache
from repro.server.limits import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.protocol import report_to_dict
from repro.server.streams import StreamRegistry, StreamSession
from repro.spec import format_spec, parse_spec
from repro.streaming import FlushPolicy

#: Per-connection hash-memo entries kept before dropping the oldest —
#: one client cycling more distinct specs than this down one connection
#: is no longer a hot path worth memoizing.
MEMO_CAPACITY = 64


def _opt_positive_int(params: dict, name: str) -> int | None:
    """Fetch an optional positive-int param, raising a typed error."""
    value = params.get(name)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ProtocolError(f"param {name!r} must be a positive int")
    return value


def spec_cache_key(canonical: str, codec: str, backend: str) -> str:
    """The stable engine-cache key: canonical spec + codec + backend."""
    return hashlib.sha256(
        canonical.encode() + b"\x00" + codec.encode() + b"\x00" + backend.encode()
    ).hexdigest()


class CompressorCache:
    """Thread-safe LRU of built :class:`TraceEngine` templates.

    Keyed by :func:`spec_cache_key`, so syntactic variants of the same
    specification share one entry.  ``get`` returns ``(template,
    canonical_hash, hit)``; callers must ``copy.copy`` the template
    before use (see module docstring).  When ``disk`` is set, misses
    consult and builds publish the host-wide disk level.
    """

    def __init__(
        self, capacity: int, metrics: ServerMetrics, disk: bool = False
    ) -> None:
        self.capacity = max(1, capacity)
        self.disk = disk
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, TraceEngine]" = OrderedDict()

    def _lookup(self, key_hash: str) -> TraceEngine | None:
        with self._lock:
            engine = self._entries.get(key_hash)
            if engine is not None:
                self._entries.move_to_end(key_hash)
                self._metrics.cache_hits.child().inc()
            return engine

    def _insert(self, key_hash: str, engine: TraceEngine) -> tuple[TraceEngine, bool]:
        """Install ``engine`` unless a racing request beat us to it."""
        with self._lock:
            existing = self._entries.get(key_hash)
            if existing is not None:
                self._entries.move_to_end(key_hash)
                self._metrics.cache_hits.child().inc()
                return existing, True
            self._entries[key_hash] = engine
            self._metrics.cache_misses.child().inc()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._metrics.cache_evictions.child().inc()
        return engine, False

    def get(
        self,
        spec_text: str,
        codec: str,
        backend: str = "auto",
        memo: "OrderedDict[tuple, str] | None" = None,
    ) -> tuple[TraceEngine, str, bool]:
        # Per-connection fast path: a memoized key hash skips the parse,
        # canonicalization, and SHA-256 entirely when the engine is still
        # resident — the common shape of a client streaming many requests
        # for one spec down one connection.
        memo_key = (spec_text, codec, backend)
        if memo is not None:
            key_hash = memo.get(memo_key)
            if key_hash is not None:
                engine = self._lookup(key_hash)
                if engine is not None:
                    return engine, key_hash, True

        # Parse outside the lock: spec errors must not poison the cache,
        # and parsing is cheap next to building predictor tables.
        spec = parse_spec(spec_text)
        canonical = format_spec(spec)
        key_hash = spec_cache_key(canonical, codec, backend)
        if memo is not None:
            memo[memo_key] = key_hash
            while len(memo) > MEMO_CAPACITY:
                memo.popitem(last=False)
        engine = self._lookup(key_hash)
        if engine is not None:
            return engine, key_hash, True

        if self.disk:
            # The disk record cannot carry the in-memory tables, but a
            # hit proves a sibling worker already tuned this spec-hash:
            # the native artifact is shared on disk, so resolving the
            # backend below loads the compiled kernel instead of
            # recompiling it.
            if enginecache.load_entry(key_hash) is not None:
                self._metrics.engine_disk_hits.child().inc()
            else:
                self._metrics.engine_disk_misses.child().inc()
        engine = TraceEngine(spec, codec=codec, backend=backend)
        engine, hit = self._insert(key_hash, engine)
        if self.disk and not hit:
            native = None
            if engine.backend == "native":  # resolves the backend (lazy)
                decision = engine._backend()
                native = decision.kernel.path if decision.kernel else None
            enginecache.store_entry(
                key_hash,
                canonical,
                codec,
                backend,
                resolved_backend=engine.backend,
                native_artifact=native,
            )
        return engine, key_hash, hit

    def preload_from_disk(self, limit: int) -> int:
        """Rebuild up to ``limit`` recently used engines from the disk
        level (startup warm-up); returns how many were installed."""
        if not self.disk or limit <= 0:
            return 0
        loaded = 0
        for key_hash, entry in enginecache.preload_entries(min(limit, self.capacity)):
            try:
                spec = parse_spec(entry["canonical_spec"])
                engine = TraceEngine(
                    spec,
                    codec=str(entry.get("codec", "bzip2")),
                    backend=str(entry.get("backend", "auto")),
                )
                engine._backend()  # resolve now: load the native artifact
            except Exception:  # noqa: BLE001 - stale records must not kill startup
                continue
            with self._lock:
                if key_hash not in self._entries and len(self._entries) < self.capacity:
                    self._entries[key_hash] = engine
                    loaded += 1
        if loaded:
            self._metrics.engines_preloaded.child().inc(loaded)
        return loaded

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class Handlers:
    """Dispatch table from op name to blocking handler."""

    def __init__(self, config: ServerConfig, metrics: ServerMetrics) -> None:
        self.config = config
        self.metrics = metrics
        self.cache = CompressorCache(
            config.cache_size, metrics, disk=config.engine_disk_cache
        )
        self.streams = StreamRegistry(config.resolved_stream_dir())

    # -- shared helpers -----------------------------------------------------

    def _engine_for(self, params: dict, memo=None) -> TraceEngine:
        spec_text = params.get("spec")
        if not isinstance(spec_text, str) or not spec_text:
            raise ProtocolError("missing required string param 'spec'")
        if len(spec_text.encode()) > self.config.max_spec_bytes:
            raise SpecError(
                f"specification text exceeds {self.config.max_spec_bytes} bytes"
            )
        codec = params.get("codec", "bzip2")
        if not isinstance(codec, str):
            raise ProtocolError("param 'codec' must be a string")
        template, _, _ = self.cache.get(spec_text, codec, self.config.backend, memo)
        # Shallow copy: shares the resolved model/codec/format, gives the
        # request private last_usage/last_report slots.
        return copy.copy(template)

    def _count_backend(self, engine: TraceEngine) -> None:
        """Record which kernel stage actually served this request."""
        self.metrics.backend_requests.labels(backend=engine.backend).inc()

    def _workers(self, params: dict) -> int:
        workers = params.get("workers")
        if workers is None:
            return self.config.engine_workers
        if not isinstance(workers, int) or workers < 0:
            raise ProtocolError("param 'workers' must be a non-negative int")
        return min(workers, 16)

    @staticmethod
    def _chunk_records(params: dict):
        chunk_records = params.get("chunk_records")
        if chunk_records is None or chunk_records == "auto":
            return chunk_records
        if not isinstance(chunk_records, int) or chunk_records < 0:
            raise ProtocolError("param 'chunk_records' must be an int or 'auto'")
        return chunk_records

    # -- ops ----------------------------------------------------------------

    def run(
        self,
        op: str,
        params: dict,
        payload: bytes,
        cancel: Callable[[], bool] | None,
        memo: "OrderedDict[tuple, str] | None" = None,
    ) -> tuple[dict, bytes]:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise ProtocolError(f"unknown op {op!r}")
        return handler(params, payload, cancel, memo)

    def op_compress(self, params, payload, cancel, memo=None):
        engine = self._engine_for(params, memo)
        blob = engine.compress(
            payload,
            chunk_records=self._chunk_records(params),
            workers=self._workers(params),
            cancel=cancel,
        )
        self._count_backend(engine)
        return {"raw_size": len(payload), "blob_size": len(blob)}, blob

    def op_decompress(self, params, payload, cancel, memo=None):
        engine = self._engine_for(params, memo)
        raw = engine.decompress(
            payload,
            workers=self._workers(params),
            mode="strict",
            max_chunk_bytes=self.config.max_chunk_bytes,
            cancel=cancel,
        )
        self._count_backend(engine)
        return {"raw_size": len(raw), "blob_size": len(payload)}, raw

    def op_salvage(self, params, payload, cancel, memo=None):
        engine = self._engine_for(params, memo)
        raw = engine.decompress(
            payload,
            workers=self._workers(params),
            mode="salvage",
            max_chunk_bytes=self.config.max_chunk_bytes,
            cancel=cancel,
        )
        # Salvage decode always runs the Python kernels (damage diagnosis
        # happens in the interpreter), whatever the configured backend.
        self.metrics.backend_requests.labels(backend="python").inc()
        meta = {"raw_size": len(raw), "blob_size": len(payload)}
        if engine.last_report is not None:
            meta["report"] = report_to_dict(engine.last_report)
        return meta, raw

    def open_stream(self, params: dict, memo=None) -> StreamSession:
        """Blocking open of a ``stream-compress`` session.

        Builds (or reuses) the engine for the embedded spec, then asks
        the registry for an exclusive session on the named stream —
        resuming the durable prefix when the archive already exists.
        Runs on the executor; the daemon's stream loop takes over once
        the session is open.
        """
        stream_id = params.get("stream")
        if not isinstance(stream_id, str) or not stream_id:
            raise ProtocolError("missing required string param 'stream'")
        engine = self._engine_for(params, memo)
        policy = FlushPolicy(
            max_records=_opt_positive_int(params, "max_records"),
            max_bytes=_opt_positive_int(params, "max_bytes"),
            max_latency_ms=_opt_positive_int(params, "max_latency_ms"),
            fsync=bool(params.get("fsync", self.config.stream_fsync)),
        )
        chunk_records = self._chunk_records(params)
        if chunk_records in (None, "auto", 0):
            chunk_records = None
        session = self.streams.open(
            stream_id, engine, chunk_records=chunk_records, policy=policy
        )
        self.metrics.streams_opened.labels(
            kind="resumed" if session.resumed else "fresh"
        ).inc()
        return session

    def op_query(self, params, payload, cancel, memo=None):
        from repro.query import QUERY_OPS, records_to_bytes, run_query

        engine = self._engine_for(params, memo)
        where = params.get("where")
        if where is not None and not isinstance(where, str):
            raise ProtocolError("param 'where' must be a string")
        query_op = params.get("op", "select")
        if query_op not in QUERY_OPS:
            raise ProtocolError(f"param 'op' must be one of {QUERY_OPS}")
        mode = params.get("mode", "strict")
        if mode not in ("strict", "salvage"):
            raise ProtocolError("param 'mode' must be 'strict' or 'salvage'")
        result = run_query(
            engine,
            payload,
            where,
            op=query_op,
            limit=_opt_positive_int(params, "limit"),
            mode=mode,
            max_chunk_bytes=self.config.max_chunk_bytes,
            cancel=cancel,
        )
        if mode == "salvage":
            # Like op_salvage: damage diagnosis runs the Python kernels.
            self.metrics.backend_requests.labels(backend="python").inc()
        else:
            self._count_backend(engine)
        out = (
            records_to_bytes(engine.format, result.records)
            if query_op == "select"
            else b""
        )
        meta: dict = {
            "op": query_op,
            "count": result.count,
            "blob_size": len(payload),
            "raw_size": len(out),
            **result.stats.as_dict(),
        }
        if result.field_stats is not None:
            meta["field_stats"] = result.field_stats
        if mode == "salvage" and engine.last_report is not None:
            meta["report"] = report_to_dict(engine.last_report)
        return meta, out

    def op_analyze(self, params, payload, cancel, memo=None):
        from repro.analysis import analyze_trace, recommend_spec
        from repro.tio import VPC_FORMAT

        budget = params.get("budget_bytes", 64 << 20)
        if not isinstance(budget, int) or budget <= 0:
            raise ProtocolError("param 'budget_bytes' must be a positive int")
        stats = analyze_trace(VPC_FORMAT, payload)
        spec = recommend_spec(VPC_FORMAT, payload, budget_bytes=budget)
        return {"recommended_spec": format_spec(spec)}, stats.render().encode()
