"""The disk-backed second level of the built-engine cache.

A worker pool pays engine warm-up (spec parse, canonicalization, model
build, and — under ``backend="auto"`` — a native-kernel compile) per
*process* unless something remembers the work.  The native artifact
cache (:mod:`repro.codegen.native`) already makes the compile once per
host; this module does the same for the serving tier's *engine
identity*: every built engine publishes a small JSON record keyed by its
canonical-spec hash into ``<cache_dir>/engines/``, and every other
worker's first request on that hash loads the record instead of
re-deriving it — parse and canonicalization are skipped (the canonical
text is stored), and the native artifact path is pinned so the loader
goes straight to the compiled ``.so`` without generating source.

The directory discipline is exactly the native cache's: an ``flock``
lock (:class:`repro.codegen.native.CacheLock`) serializes mutation,
entries are published by atomic rename, and the set is pruned
oldest-first to a bounded entry count.  Records are advisory — a
missing, stale, or corrupt entry just means the worker rebuilds and
republishes — so the cache can never produce wrong bytes, only save
warm-up.

Workers may also *preload* the most recently used entries at startup
(:func:`preload_entries`), which moves warm-up from the first unlucky
request to process start, where the supervisor pays it while the rest of
the pool is already serving.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.codegen.native import CacheLock, cache_dir

#: Subdirectory of the tcgen cache holding engine records.
ENGINE_CACHE_SUBDIR = "engines"

#: Engine-record schema version; bumped when the payload changes shape.
ENGINE_CACHE_VERSION = 1

#: Default cap on stored engine records (each is a small JSON file).
DEFAULT_MAX_ENTRIES = 512


def engine_cache_dir() -> str:
    """Where engine records live (honours ``TCGEN_CACHE_DIR``)."""
    return os.path.join(cache_dir(), ENGINE_CACHE_SUBDIR)


def max_entries() -> int:
    raw = os.environ.get("TCGEN_ENGINE_CACHE_MAX_ENTRIES")
    if raw is None:
        return DEFAULT_MAX_ENTRIES
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_MAX_ENTRIES


def _entry_path(directory: str, key_hash: str) -> str:
    return os.path.join(directory, key_hash + ".json")


def load_entry(key_hash: str, directory: str | None = None) -> dict | None:
    """The stored record for ``key_hash``, or ``None``.

    A readable record refreshes its mtime (the prune recency signal) and
    must carry the current schema version and a canonical spec; anything
    else is treated as absent.
    """
    directory = directory or engine_cache_dir()
    path = _entry_path(directory, key_hash)
    try:
        with open(path) as handle:
            entry = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(entry, dict):
        return None
    if entry.get("version") != ENGINE_CACHE_VERSION:
        return None
    if not isinstance(entry.get("canonical_spec"), str):
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    return entry


def store_entry(
    key_hash: str,
    canonical_spec: str,
    codec: str,
    backend: str,
    *,
    resolved_backend: str | None = None,
    native_artifact: str | None = None,
    directory: str | None = None,
) -> None:
    """Publish the record for a freshly built engine (best-effort).

    Publication happens via atomic rename under the shared cache lock,
    mirroring the native artifact cache: concurrent builders of the same
    key yield one usable record, and readers never observe a torn file.
    A filesystem that refuses is silently tolerated — the cache is an
    optimization, not a correctness dependency.
    """
    directory = directory or engine_cache_dir()
    entry = {
        "version": ENGINE_CACHE_VERSION,
        "canonical_spec": canonical_spec,
        "codec": codec,
        "backend": backend,
        "resolved_backend": resolved_backend,
        "native_artifact": native_artifact,
        "created": time.time(),
    }
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(prefix=".engine_", dir=directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            with CacheLock(directory):
                os.replace(tmp_path, _entry_path(directory, key_hash))
                prune_entries(directory, max_entries())
        finally:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
    except OSError:
        pass


def prune_entries(directory: str, cap: int) -> list[str]:
    """Drop the oldest records until at most ``cap`` remain.

    Caller holds the cache lock.  Returns the evicted key hashes.
    """
    entries = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        if not name.endswith(".json") or name.startswith("."):
            continue
        path = os.path.join(directory, name)
        try:
            entries.append((os.stat(path).st_mtime, name[: -len(".json")]))
        except OSError:
            continue
    entries.sort()
    evicted = []
    while len(entries) - len(evicted) > cap:
        _, key = entries[len(evicted)]
        try:
            os.remove(_entry_path(directory, key))
        except OSError:
            pass
        evicted.append(key)
    return evicted


def preload_entries(limit: int, directory: str | None = None) -> list[tuple[str, dict]]:
    """The most recently used records, newest first, up to ``limit``.

    Used by workers at startup to rebuild their hottest engines before
    the first request arrives.  Purely a read — no locking needed beyond
    per-file tolerance for concurrent eviction.
    """
    directory = directory or engine_cache_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    stamped = []
    for name in names:
        if not name.endswith(".json") or name.startswith("."):
            continue
        try:
            mtime = os.stat(os.path.join(directory, name)).st_mtime
        except OSError:
            continue
        stamped.append((mtime, name[: -len(".json")]))
    stamped.sort(reverse=True)
    loaded: list[tuple[str, dict]] = []
    for _, key_hash in stamped[: max(0, limit)]:
        entry = load_entry(key_hash, directory)
        if entry is not None:
            loaded.append((key_hash, entry))
    return loaded
