"""HTTP/1.1 gateway in front of the ``tcgen-serve`` worker pool.

A minimal, dependency-free HTTP server hosted in the supervisor process.
It exists for two reasons:

- **reachability** — ``curl``/httpie/load balancers can drive the
  service without speaking the framed TCP protocol;
- **placement** — the gateway, not the kernel, picks the worker: each
  request's canonical-spec hash is looked up on a consistent-hash ring
  (:mod:`repro.server.ring`) and proxied over the owning worker's
  private control socket, so one spec's engine (predictor tables +
  compiled kernel) stays hot in exactly one process.

Endpoints::

    POST /v1/compress?spec=...|preset=tcgen_a[&codec=...][&chunk_records=...]
    POST /v1/decompress?spec=...|preset=...[&codec=...]
    POST /v1/query?spec=...|preset=...[&where=...][&op=select|count|stats]
                           predicate pushdown over an uploaded container;
                           ``select`` answers raw packed records, the other
                           ops answer JSON planner statistics
    POST /v1/analyze       raw trace in, JSON {recommended_spec, report} out
    GET  /healthz          liveness + per-worker and pool-level snapshots
    GET  /metrics          merged Prometheus exposition (worker="N" labels
                           per sample, plus tcgen_pool_* aggregates)

Request/response bodies are raw ``application/octet-stream`` trace and
container bytes.  Typed daemon errors surface as JSON
``{"code", "message"}`` with conventional statuses (429 + Retry-After
for backpressure, 422 for corruption, 504 for a fired deadline, ...).
The gateway walks the ring's preference order when the owner is
unreachable or saturated, so failover is deterministic per key.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
import json
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import SpecError
from repro.server import protocol
from repro.server.handlers import spec_cache_key
from repro.server.limits import ServerConfig
from repro.server.metrics import aggregate_snapshots, merge_expositions
from repro.server.protocol import RequestHeader, decode_json_payload
from repro.server.ring import HashRing
from repro.spec import format_spec, parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

#: Named specs accepted as ``?preset=`` (spelled as in the paper).
PRESETS = {
    "tcgen_a": TCGEN_A_SPEC,
    "tcgen_b": TCGEN_B_SPEC,
    "a": TCGEN_A_SPEC,
    "b": TCGEN_B_SPEC,
}

#: Protocol error code -> HTTP status line.
HTTP_STATUS = {
    "bad_request": (400, "Bad Request"),
    "spec_error": (400, "Bad Request"),
    "trace_format": (400, "Bad Request"),
    "checksum": (422, "Unprocessable Content"),
    "truncated": (422, "Unprocessable Content"),
    "corrupt": (422, "Unprocessable Content"),
    "payload_too_large": (413, "Content Too Large"),
    "backpressure": (429, "Too Many Requests"),
    "deadline_exceeded": (504, "Gateway Timeout"),
    "shutting_down": (503, "Service Unavailable"),
    "internal": (500, "Internal Server Error"),
}

#: Idle proxied connections kept per worker.
LINK_POOL_SIZE = 8

#: Spec-text -> routing-key memo entries (the gateway-side analogue of
#: the per-connection memo inside the daemon).
ROUTE_MEMO_SIZE = 128

#: Timeout for health/metrics fan-out to one worker (seconds).
CONTROL_TIMEOUT = 5.0


class _WireError(Exception):
    """An ERROR frame from a worker, with its original wire code."""

    def __init__(self, code: str, message: str, retry_after_ms=None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_ms = retry_after_ms


class _HttpError(Exception):
    """A request the gateway itself rejects (no worker involved)."""

    def __init__(self, status: int, reason: str, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.code = code


async def _read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    header = await reader.readexactly(protocol.HEADER_SIZE)
    frame_type, length = protocol.decode_header(header)
    payload = await reader.readexactly(length) if length else b""
    return frame_type, payload


class _WorkerLink:
    """Async framed-protocol client to one worker's control socket, with
    a small idle-connection pool (one in-flight request per connection,
    per the protocol's strict ordering)."""

    def __init__(self, worker_id: int, host: str, port: int) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._next_id = 1

    async def _connection(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), 5.0
        )

    def _release(self, conn) -> None:
        if len(self._idle) < LINK_POOL_SIZE and not conn[1].is_closing():
            self._idle.append(conn)
        else:
            conn[1].close()

    def close(self) -> None:
        while self._idle:
            self._idle.pop()[1].close()

    async def request(
        self,
        op: str,
        params: dict,
        payload: bytes,
        deadline_ms: int | None,
        timeout: float,
    ) -> tuple[dict, bytes]:
        """One framed request; returns ``(response_header, payload)``.

        Raises :class:`_WireError` for ERROR frames and lets connection
        and timeout failures propagate for the caller's failover walk.
        """
        conn = await self._connection()
        try:
            result = await asyncio.wait_for(
                self._roundtrip(conn, op, params, payload, deadline_ms), timeout
            )
        except BaseException:
            conn[1].close()
            raise
        self._release(conn)
        return result

    async def _roundtrip(self, conn, op, params, payload, deadline_ms):
        reader, writer = conn
        request_id = self._next_id
        self._next_id += 1
        header = RequestHeader(
            op=op,
            request_id=request_id,
            payload_size=len(payload),
            deadline_ms=deadline_ms,
            params=params,
        )
        writer.write(header.encode())
        if op not in protocol.PAYLOADLESS_OPS:
            await writer.drain()
            frame_type, frame_payload = await _read_frame(reader)
            if frame_type == protocol.ERROR:
                raise self._wire_error(frame_payload)
            if frame_type != protocol.CONTINUE:
                raise ConnectionError(
                    f"expected CONTINUE from worker, got frame {frame_type}"
                )
            view = memoryview(payload)
            for start in range(0, len(payload), protocol.DATA_CHUNK):
                writer.write(
                    protocol.encode_frame(
                        protocol.DATA, view[start : start + protocol.DATA_CHUNK]
                    )
                )
            writer.write(protocol.encode_frame(protocol.END))
        await writer.drain()
        frame_type, frame_payload = await _read_frame(reader)
        if frame_type == protocol.ERROR:
            raise self._wire_error(frame_payload)
        if frame_type != protocol.RESPONSE:
            raise ConnectionError(
                f"expected RESPONSE from worker, got frame {frame_type}"
            )
        response = decode_json_payload(frame_payload)
        declared = response.get("payload_size", 0)
        chunks: list[bytes] = []
        total = 0
        while True:
            frame_type, data = await _read_frame(reader)
            if frame_type == protocol.END:
                break
            if frame_type != protocol.DATA:
                raise ConnectionError(
                    f"expected DATA or END from worker, got frame {frame_type}"
                )
            total += len(data)
            chunks.append(data)
        if total != declared:
            raise ConnectionError(
                f"worker declared {declared} bytes but sent {total}"
            )
        return response, b"".join(chunks)

    @staticmethod
    def _wire_error(frame_payload: bytes) -> _WireError:
        header = decode_json_payload(frame_payload)
        return _WireError(
            str(header.get("code", "internal")),
            str(header.get("message", "unknown worker error")),
            header.get("retry_after_ms"),
        )


class HttpGateway:
    """The gateway's connection handler + routing state (module docs)."""

    def __init__(
        self, config: ServerConfig, workers: list[tuple[int, str, int]]
    ) -> None:
        self.config = config
        self.links = {
            worker_id: _WorkerLink(worker_id, host, port)
            for worker_id, host, port in workers
        }
        self.ring = HashRing(self.links)
        self._route_memo: OrderedDict = OrderedDict()

    # -- routing -------------------------------------------------------------

    def _route_key(self, spec_text: str, codec: str) -> str:
        """The canonical-spec hash used for ring placement — the same key
        the workers' engine caches use, so placement matches residency."""
        memo_key = (spec_text, codec)
        key = self._route_memo.get(memo_key)
        if key is None:
            canonical = format_spec(parse_spec(spec_text))
            key = spec_cache_key(canonical, codec, self.config.backend)
            self._route_memo[memo_key] = key
            while len(self._route_memo) > ROUTE_MEMO_SIZE:
                self._route_memo.popitem(last=False)
        return key

    # -- HTTP plumbing -------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while await self._handle_one(reader, writer):
                pass
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 60.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            return False
        except asyncio.LimitOverrunError:
            self._respond_error(
                writer, 431, "Request Header Fields Too Large",
                "bad_request", "request head too large", close=True,
            )
            await writer.drain()
            return False
        try:
            method, target, headers = self._parse_head(head)
        except ValueError:
            self._respond_error(
                writer, 400, "Bad Request", "bad_request",
                "malformed request head", close=True,
            )
            await writer.drain()
            return False
        keep_alive = headers.get("connection", "").lower() != "close"
        try:
            body = await self._read_body(reader, writer, headers)
            status, reason, resp_headers, resp_body = await self._dispatch(
                method, target, body
            )
        except _HttpError as exc:
            self._respond_error(
                writer, exc.status, exc.reason, exc.code, str(exc),
                close=not keep_alive,
            )
            await writer.drain()
            return keep_alive
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        self._respond(
            writer, status, reason, resp_headers, resp_body, close=not keep_alive
        )
        await writer.drain()
        return keep_alive

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict]:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
        if not version.startswith("HTTP/1."):
            raise ValueError(version)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict,
    ) -> bytes:
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, "Bad Request", "bad_request",
                f"bad Content-Length {raw_length!r}",
            ) from None
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _HttpError(
                411, "Length Required", "bad_request",
                "chunked uploads are not supported; send Content-Length",
            )
        if length > self.config.max_payload_bytes:
            raise _HttpError(
                413, "Content Too Large", "payload_too_large",
                f"payload of {length} bytes exceeds the "
                f"{self.config.max_payload_bytes}-byte cap",
            )
        if "100-continue" in headers.get("expect", "").lower():
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        if length == 0:
            return b""
        return await asyncio.wait_for(
            reader.readexactly(length), self.config.read_timeout_s
        )

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        headers: list[tuple[str, str]],
        body: bytes,
        close: bool,
    ) -> None:
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Connection: " + ("close" if close else "keep-alive"))
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        code: str,
        message: str,
        close: bool,
        retry_after_ms=None,
    ) -> None:
        body = json.dumps({"code": code, "message": message}).encode()
        headers = [("Content-Type", "application/json")]
        if retry_after_ms is not None:
            headers.append(("Retry-After", str(max(1, -(-retry_after_ms // 1000)))))
        self._respond(writer, status, reason, headers, body, close)

    # -- endpoint dispatch ---------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, list[tuple[str, str]], bytes]:
        split = urlsplit(target)
        path = unquote(split.path)
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(
                    405, "Method Not Allowed", "bad_request", "use GET"
                )
            return await self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(
                    405, "Method Not Allowed", "bad_request", "use GET"
                )
            return await self._metrics()
        if path in ("/v1/compress", "/v1/decompress", "/v1/query", "/v1/analyze"):
            if method != "POST":
                raise _HttpError(
                    405, "Method Not Allowed", "bad_request", "use POST"
                )
            query = parse_qs(split.query, keep_blank_values=True)
            if path == "/v1/query":
                return await self._v1_query(query, body)
            if path == "/v1/analyze":
                return await self._v1_analyze(query, body)
            return await self._proxy(path.rsplit("/", 1)[1], query, body)
        raise _HttpError(
            404, "Not Found", "bad_request", f"unknown path {path!r}"
        )

    @staticmethod
    def _query_value(query: dict, name: str) -> str | None:
        values = query.get(name)
        return values[-1] if values else None

    def _resolve_params(self, query: dict) -> tuple[dict, str, str]:
        preset = self._query_value(query, "preset")
        spec_text = self._query_value(query, "spec")
        if preset is not None:
            spec_text = PRESETS.get(preset.lower())
            if spec_text is None:
                raise _HttpError(
                    400, "Bad Request", "bad_request",
                    f"unknown preset {preset!r}; expected one of "
                    f"{sorted(set(PRESETS))}",
                )
        if not spec_text:
            raise _HttpError(
                400, "Bad Request", "bad_request",
                "pass ?spec=<urlencoded spec text> or ?preset=tcgen_a|tcgen_b",
            )
        codec = self._query_value(query, "codec") or "bzip2"
        params: dict = {"spec": spec_text, "codec": codec}
        chunk_records = self._query_value(query, "chunk_records")
        if chunk_records is not None:
            params["chunk_records"] = (
                "auto" if chunk_records == "auto" else self._int_param(
                    "chunk_records", chunk_records
                )
            )
        workers = self._query_value(query, "workers")
        if workers is not None:
            params["workers"] = self._int_param("workers", workers)
        return params, spec_text, codec

    @staticmethod
    def _int_param(name: str, value: str) -> int:
        try:
            return int(value)
        except ValueError:
            raise _HttpError(
                400, "Bad Request", "bad_request",
                f"query param {name!r} must be an integer, got {value!r}",
            ) from None

    def _deadline_ms(self, query: dict) -> int | None:
        deadline_raw = self._query_value(query, "deadline_ms")
        if deadline_raw is None:
            return None
        return self._int_param("deadline_ms", deadline_raw)

    async def _call(
        self, key: str, op: str, params: dict, body: bytes, deadline_ms: int | None
    ) -> tuple[dict, dict, bytes]:
        """Proxy one op to the ring, walking the preference order on
        saturation/unreachability; returns ``(response_header, meta,
        payload)`` or raises :class:`_HttpError` with the mapped status."""
        timeout = (
            min(
                deadline_ms / 1000.0 if deadline_ms else
                self.config.default_deadline_s,
                self.config.max_deadline_s,
            )
            + 30.0
        )
        soft_failure: _WireError | None = None
        for worker_id in self.ring.preference(key):
            try:
                response, payload = await self.links[worker_id].request(
                    op, params, body, deadline_ms, timeout
                )
            except _WireError as exc:
                if exc.code in ("backpressure", "shutting_down"):
                    # The owner is saturated or going away; the next ring
                    # member is this key's deterministic backup.
                    soft_failure = exc
                    continue
                status, reason = HTTP_STATUS.get(exc.code, (500, "Internal Server Error"))
                raise _HttpError(status, reason, exc.code, str(exc)) from exc
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                continue
            response.setdefault("worker", worker_id)
            meta = response.get("meta") or {}
            return response, meta, payload
        if soft_failure is not None:
            status, reason = HTTP_STATUS[soft_failure.code]
            raise _HttpError(status, reason, soft_failure.code, str(soft_failure))
        raise _HttpError(
            502, "Bad Gateway", "internal", "no worker answered the request"
        )

    def _spec_route_key(self, spec_text: str, codec: str) -> str:
        try:
            return self._route_key(spec_text, codec)
        except SpecError as exc:
            raise _HttpError(400, "Bad Request", "spec_error", str(exc)) from exc

    async def _proxy(
        self, op: str, query: dict, body: bytes
    ) -> tuple[int, str, list[tuple[str, str]], bytes]:
        params, spec_text, codec = self._resolve_params(query)
        key = self._spec_route_key(spec_text, codec)
        response, meta, payload = await self._call(
            key, op, params, body, self._deadline_ms(query)
        )
        headers = [
            ("Content-Type", "application/octet-stream"),
            ("X-TCGen-Worker", str(response.get("worker", ""))),
            ("X-TCGen-Raw-Size", str(meta.get("raw_size", ""))),
            ("X-TCGen-Blob-Size", str(meta.get("blob_size", ""))),
        ]
        return 200, "OK", headers, payload

    async def _v1_query(
        self, query: dict, body: bytes
    ) -> tuple[int, str, list[tuple[str, str]], bytes]:
        params, spec_text, codec = self._resolve_params(query)
        query_op = self._query_value(query, "op") or "select"
        params["op"] = query_op
        where = self._query_value(query, "where")
        if where is not None:
            params["where"] = where
        mode = self._query_value(query, "mode")
        if mode is not None:
            params["mode"] = mode
        limit = self._query_value(query, "limit")
        if limit is not None:
            params["limit"] = self._int_param("limit", limit)
        key = self._spec_route_key(spec_text, codec)
        response, meta, payload = await self._call(
            key, "query", params, body, self._deadline_ms(query)
        )
        headers = [
            ("X-TCGen-Worker", str(response.get("worker", ""))),
            ("X-TCGen-Count", str(meta.get("count", ""))),
            ("X-TCGen-Chunks-Decoded", str(meta.get("decoded_chunks", ""))),
            ("X-TCGen-Chunks-Skipped", str(meta.get("skipped_chunks", ""))),
            ("X-TCGen-Chunks-Total", str(meta.get("total_chunks", ""))),
        ]
        if query_op == "select":
            # Matching records, packed back into raw record bytes.
            headers.insert(0, ("Content-Type", "application/octet-stream"))
            return 200, "OK", headers, payload
        headers.insert(0, ("Content-Type", "application/json"))
        return 200, "OK", headers, json.dumps(meta, sort_keys=True).encode()

    async def _v1_analyze(
        self, query: dict, body: bytes
    ) -> tuple[int, str, list[tuple[str, str]], bytes]:
        params: dict = {}
        budget = self._query_value(query, "budget_bytes")
        if budget is not None:
            params["budget_bytes"] = self._int_param("budget_bytes", budget)
        # Analysis has no spec to place by; a constant key still gives the
        # op a deterministic owner (and backups) on the ring.
        response, meta, payload = await self._call(
            "op:analyze", "analyze", params, body, self._deadline_ms(query)
        )
        result = {
            "recommended_spec": meta.get("recommended_spec", ""),
            "report": payload.decode(errors="replace"),
        }
        headers = [
            ("Content-Type", "application/json"),
            ("X-TCGen-Worker", str(response.get("worker", ""))),
        ]
        return 200, "OK", headers, json.dumps(result, sort_keys=True).encode()

    # -- fan-out endpoints ---------------------------------------------------

    async def _worker_snapshot(self, link: _WorkerLink):
        response, _ = await link.request("health", {}, b"", None, CONTROL_TIMEOUT)
        return response.get("meta") or {}

    async def _healthz(self) -> tuple[int, str, list[tuple[str, str]], bytes]:
        ordered = sorted(self.links)
        results = await asyncio.gather(
            *(self._worker_snapshot(self.links[wid]) for wid in ordered),
            return_exceptions=True,
        )
        workers: dict[str, dict] = {}
        reachable: dict[str, dict] = {}
        for worker_id, result in zip(ordered, results):
            if isinstance(result, BaseException):
                workers[str(worker_id)] = {
                    "status": "unreachable",
                    "error": f"{type(result).__name__}: {result}",
                }
            else:
                workers[str(worker_id)] = result
                reachable[str(worker_id)] = result
        healthy = len(reachable) == len(ordered) and all(
            snap.get("status") == "ok" for snap in reachable.values()
        )
        payload = {
            "status": "ok" if healthy else "degraded",
            "workers": workers,
            "pool": aggregate_snapshots(reachable),
            "worker_count": len(ordered),
            "workers_up": len(reachable),
        }
        body = json.dumps(payload, sort_keys=True).encode()
        status = 200 if healthy else 503
        reason = "OK" if healthy else "Service Unavailable"
        return status, reason, [("Content-Type", "application/json")], body

    async def _metrics(self) -> tuple[int, str, list[tuple[str, str]], bytes]:
        ordered = sorted(self.links)

        async def one(link: _WorkerLink):
            _, exposition = await link.request(
                "metrics", {}, b"", None, CONTROL_TIMEOUT
            )
            snapshot = await self._worker_snapshot(link)
            return exposition.decode(), snapshot

        results = await asyncio.gather(
            *(one(self.links[wid]) for wid in ordered), return_exceptions=True
        )
        expositions: dict[str, str] = {}
        snapshots: dict[str, dict] = {}
        for worker_id, result in zip(ordered, results):
            if isinstance(result, BaseException):
                continue
            expositions[str(worker_id)], snapshots[str(worker_id)] = result
        lines = [merge_expositions(expositions).rstrip("\n")]
        lines.append("# HELP tcgen_pool_workers Configured pool size.")
        lines.append("# TYPE tcgen_pool_workers gauge")
        lines.append(f"tcgen_pool_workers {len(ordered)}")
        lines.append("# HELP tcgen_pool_workers_up Workers that answered the scrape.")
        lines.append("# TYPE tcgen_pool_workers_up gauge")
        lines.append(f"tcgen_pool_workers_up {len(expositions)}")
        for key, value in sorted(aggregate_snapshots(snapshots).items()):
            lines.append(f"# TYPE tcgen_pool_{key} gauge")
            lines.append(f"tcgen_pool_{key} {value}")
        body = ("\n".join(line for line in lines if line) + "\n").encode()
        headers = [("Content-Type", "text/plain; version=0.0.4")]
        return 200, "OK", headers, body
