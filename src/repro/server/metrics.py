"""Server observability: counters, gauges, latency histograms.

A deliberately small, dependency-free metrics core in the Prometheus
data model.  Three instrument kinds:

- :class:`Counter` — monotonically increasing count (requests, bytes,
  cache hits);
- :class:`Gauge` — instantaneous value (queue depth, open connections);
- :class:`Histogram` — cumulative-bucket latency distribution with
  ``_sum`` and ``_count`` series.

Instruments hang off a :class:`MetricsRegistry` as *families* keyed by
metric name; a family fans out into children per label combination
(``registry.counter("x", "help", ("op",)).labels(op="compress").inc()``).
Rendering (:meth:`MetricsRegistry.render`) produces the Prometheus text
exposition format, served verbatim by the ``metrics`` protocol op.
Every instrument takes one lock per update — contention is negligible
next to compression work — and rendering is deterministic (families in
registration order, children sorted by label values) so tests can
assert on exact lines.
"""

from __future__ import annotations

from bisect import bisect_left
import threading

#: Default latency buckets in seconds: 1 ms .. 60 s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0``, floats as-is."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """An instantaneous value that can move both ways."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics)."""

    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self._lock = threading.Lock()
        self.buckets = tuple(buckets)
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative) counts
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self.counts):
                self.counts[index] += 1
            self.total += value
            self.count += 1


class _Family:
    """One named metric with children per label-value combination."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: tuple[str, ...],
        factory,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name} wants labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory()
                self._children[key] = child
            return child

    def child(self):
        """The single unlabeled child (for label-less families)."""
        if self.label_names:
            raise ValueError(f"metric {self.name} requires labels")
        return self.labels()

    def items(self):
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A namespace of metric families with Prometheus text rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, name, help_text, kind, label_names, factory) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind, tuple(label_names), factory)
                self._families[name] = family
            elif family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(f"metric {name} re-registered inconsistently")
            return family

    def counter(self, name: str, help_text: str, label_names=()) -> _Family:
        return self._register(name, help_text, "counter", label_names, Counter)

    def gauge(self, name: str, help_text: str, label_names=()) -> _Family:
        return self._register(name, help_text, "gauge", label_names, Gauge)

    def histogram(
        self, name: str, help_text: str, label_names=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        return self._register(
            name, help_text, "histogram", label_names,
            lambda: Histogram(buckets),
        )

    def render(self) -> str:
        """Prometheus text exposition of every family."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.items():
                label_text = _label_text(family.label_names, values)
                if isinstance(child, (Counter, Gauge)):
                    lines.append(
                        f"{family.name}{label_text} {_format_value(child.value)}"
                    )
                    continue
                cumulative = 0
                for bound, count in zip(child.buckets, child.counts):
                    cumulative += count
                    bucket_labels = _label_text(
                        family.label_names + ("le",),
                        values + (_format_value(bound),),
                    )
                    lines.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
                inf_labels = _label_text(
                    family.label_names + ("le",), values + ("+Inf",)
                )
                lines.append(f"{family.name}_bucket{inf_labels} {child.count}")
                lines.append(
                    f"{family.name}_sum{label_text} {_format_value(child.total)}"
                )
                lines.append(f"{family.name}_count{label_text} {child.count}")
        return "\n".join(lines) + "\n"


class ServerMetrics:
    """The daemon's instrument set, pre-registered with stable names."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.requests = self.registry.counter(
            "tcgen_requests_total",
            "Requests finished, by op and terminal status (ok or error code).",
            ("op", "status"),
        )
        self.latency = self.registry.histogram(
            "tcgen_request_seconds",
            "Wall-clock request latency from header receipt to response, by op.",
            ("op",),
        )
        self.bytes_in = self.registry.counter(
            "tcgen_bytes_in_total", "Request payload bytes received."
        )
        self.bytes_out = self.registry.counter(
            "tcgen_bytes_out_total", "Response payload bytes sent."
        )
        self.queue_depth = self.registry.gauge(
            "tcgen_queue_depth", "Requests currently admitted (queued + executing)."
        )
        self.connections = self.registry.gauge(
            "tcgen_connections", "Open client connections."
        )
        self.backpressure = self.registry.counter(
            "tcgen_backpressure_total", "Requests rejected because the queue was full."
        )
        self.deadlines = self.registry.counter(
            "tcgen_deadline_total", "Requests whose per-request deadline fired."
        )
        self.cache_hits = self.registry.counter(
            "tcgen_compressor_cache_hits_total",
            "Requests served by an already-built compressor engine.",
        )
        self.cache_misses = self.registry.counter(
            "tcgen_compressor_cache_misses_total",
            "Requests that had to parse the spec and build a new engine.",
        )
        self.cache_evictions = self.registry.counter(
            "tcgen_compressor_cache_evictions_total",
            "Engines dropped from the LRU compressor cache.",
        )
        self.backend_requests = self.registry.counter(
            "tcgen_backend_requests_total",
            "Kernel-stage requests finished, by resolved backend "
            "(python, numpy, or native).",
            ("backend",),
        )
        self.engine_disk_hits = self.registry.counter(
            "tcgen_engine_disk_cache_hits_total",
            "In-memory engine-cache misses served from the shared "
            "disk-backed engine cache (no spec re-canonicalization).",
        )
        self.engine_disk_misses = self.registry.counter(
            "tcgen_engine_disk_cache_misses_total",
            "Engine builds that found no usable disk record and "
            "published a fresh one.",
        )
        self.engines_preloaded = self.registry.counter(
            "tcgen_engines_preloaded_total",
            "Engines rebuilt from the disk cache at worker startup, "
            "before the first request.",
        )
        self.streams_opened = self.registry.counter(
            "tcgen_streams_opened_total",
            "stream-compress sessions opened, by kind (fresh or resumed).",
            ("kind",),
        )
        self.streams_closed = self.registry.counter(
            "tcgen_streams_closed_total",
            "stream-compress sessions sealed with their trailer.",
        )
        self.streams_active = self.registry.gauge(
            "tcgen_streams_active", "stream-compress sessions currently open."
        )
        self.stream_flushes = self.registry.counter(
            "tcgen_stream_flushes_total",
            "Durable stream flushes acked (explicit, latency, and drain).",
        )
        self.stream_records = self.registry.counter(
            "tcgen_stream_records_total",
            "Trace records made durable by stream flushes.",
        )

    def cache_hit_rate(self) -> float:
        hits = self.cache_hits.child().value
        misses = self.cache_misses.child().value
        total = hits + misses
        return hits / total if total else 0.0

    def observe_request(self, op: str, status: str, seconds: float) -> None:
        self.requests.labels(op=op, status=status).inc()
        self.latency.labels(op=op).observe(seconds)

    def snapshot(self) -> dict:
        """Flat key/value summary for stats log lines and the health op."""
        ok = errors = 0.0
        for (op, status), child in self.requests.items():
            if status == "ok":
                ok += child.value
            else:
                errors += child.value
        return {
            "requests_ok": int(ok),
            "requests_error": int(errors),
            "backpressure": int(self.backpressure.child().value),
            "deadlines": int(self.deadlines.child().value),
            "queue_depth": int(self.queue_depth.child().value),
            "connections": int(self.connections.child().value),
            "bytes_in": int(self.bytes_in.child().value),
            "bytes_out": int(self.bytes_out.child().value),
            "cache_hits": int(self.cache_hits.child().value),
            "cache_misses": int(self.cache_misses.child().value),
            "cache_evictions": int(self.cache_evictions.child().value),
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "engine_disk_hits": int(self.engine_disk_hits.child().value),
            "engine_disk_misses": int(self.engine_disk_misses.child().value),
            "engines_preloaded": int(self.engines_preloaded.child().value),
            "streams_active": int(self.streams_active.child().value),
            "stream_flushes": int(self.stream_flushes.child().value),
            "stream_records": int(self.stream_records.child().value),
        }

    def render(self) -> str:
        return self.registry.render()


# -- worker-pool aggregation (used by the HTTP gateway) -----------------------


def relabel_exposition(text: str, worker: str) -> str:
    """Inject a ``worker`` label into every sample of an exposition.

    ``name{a="b"} v`` becomes ``name{worker="N",a="b"} v`` and a bare
    ``name v`` becomes ``name{worker="N"} v``; comment lines pass through
    untouched.  This is how one worker's registry is made distinguishable
    in the pool-level ``/metrics`` concatenation.
    """
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_end = len(line)
        brace = line.find("{")
        space = line.find(" ")
        if brace != -1 and (space == -1 or brace < space):
            out.append(
                f'{line[:brace]}{{worker="{worker}",{line[brace + 1:]}'
                if line[brace + 1] != "}"
                else f'{line[:brace]}{{worker="{worker}"}}{line[brace + 2:]}'
            )
            continue
        if space != -1:
            name_end = space
        out.append(f'{line[:name_end]}{{worker="{worker}"}}{line[name_end:]}')
    return "\n".join(out)


def merge_expositions(per_worker: dict[str, str]) -> str:
    """Combine per-worker expositions into one: ``# HELP``/``# TYPE``
    emitted once per family, every sample carrying its worker label."""
    lines: list[str] = []
    seen_comments: set[str] = set()
    for worker in sorted(per_worker):
        for line in relabel_exposition(per_worker[worker], worker).splitlines():
            if line.startswith("#"):
                if line in seen_comments:
                    continue
                seen_comments.add(line)
            lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


def aggregate_snapshots(snapshots: dict[str, dict]) -> dict:
    """Sum per-worker flat snapshots into the pool-level totals.

    Additive fields are summed; ``cache_hit_rate`` is recomputed from
    the summed hits/misses rather than averaged; ``queue_depth`` and
    ``connections`` (instantaneous gauges) sum meaningfully because they
    partition across workers.
    """
    totals: dict = {}
    for snap in snapshots.values():
        for key, value in snap.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if key in ("cache_hit_rate", "uptime_s", "worker"):
                continue
            totals[key] = totals.get(key, 0) + value
    hits = totals.get("cache_hits", 0)
    misses = totals.get("cache_misses", 0)
    totals["cache_hit_rate"] = round(hits / (hits + misses), 4) if hits + misses else 0.0
    return totals
