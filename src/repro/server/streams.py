"""Durable server-side stream sessions for the ``stream-compress`` op.

A *stream* is a named append-only v4 archive under the server's stream
directory.  The registry maps the client-chosen stream id onto a file,
guards it against concurrent writers (an in-process table for sibling
connections plus an ``fcntl`` byte-range lock against sibling workers in
a pool), and wraps it in a :class:`~repro.streaming.StreamingCompressor`
— resuming the durable prefix when the file already holds an open
stream, so a client reconnecting after a crash (its own, a worker's, or
the whole host's) continues exactly from the last acked watermark.

Stream ids are restricted to a filesystem-safe alphabet so a hostile
client cannot escape the stream directory.
"""

from __future__ import annotations

import os
import re
import threading

from repro.errors import ProtocolError
from repro.streaming import FlushPolicy, StreamingCompressor

try:  # pragma: no cover - fcntl is POSIX-only; Windows skips cross-process locks
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Filesystem-safe stream identifiers: no separators, no dot-prefix.
STREAM_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: Suffix of every stream archive inside the stream directory.
STREAM_SUFFIX = ".tc4"


class StreamBusyError(ProtocolError):
    """Another connection (or worker) is writing this stream right now."""


class StreamSession:
    """One open stream: the compressor plus the locks that made it exclusive."""

    __slots__ = ("stream_id", "path", "compressor", "resumed", "_registry", "_file")

    def __init__(self, stream_id, path, compressor, resumed, registry, file):
        self.stream_id = stream_id
        self.path = path
        #: The :class:`~repro.streaming.StreamingCompressor` bound to the file.
        self.compressor = compressor
        #: True when the file already held an open stream that was recovered.
        self.resumed = resumed
        self._registry = registry
        self._file = file

    def release(self) -> None:
        """Drop exclusivity; always called, however the session ended.

        Leaves the file exactly as durable as the compressor made it: a
        closed stream keeps its trailer, an aborted one stays open and
        resumable.
        """
        try:
            if not self.compressor.closed:
                self.compressor.abort()
        finally:
            try:
                if not self._file.closed:
                    self._file.close()  # closing also drops the fcntl lock
            finally:
                self._registry._release(self.stream_id)


class StreamRegistry:
    """Names -> exclusive, durable stream sessions (see module docstring)."""

    def __init__(self, stream_dir: str) -> None:
        self.stream_dir = stream_dir
        self._lock = threading.Lock()
        self._active: set[str] = set()

    def path_for(self, stream_id: str) -> str:
        if not STREAM_ID_RE.match(stream_id or ""):
            raise ProtocolError(
                f"bad stream id {stream_id!r}: want 1-128 chars of "
                "[A-Za-z0-9._-] not starting with '.', '_' or '-'"
            )
        return os.path.join(self.stream_dir, stream_id + STREAM_SUFFIX)

    def open(
        self,
        stream_id: str,
        engine,
        *,
        chunk_records=None,
        policy: FlushPolicy | None = None,
    ) -> StreamSession:
        """Acquire ``stream_id`` exclusively and open/resume its archive."""
        path = self.path_for(stream_id)
        with self._lock:
            if stream_id in self._active:
                raise StreamBusyError(
                    f"stream {stream_id!r} is already being written "
                    "on another connection"
                )
            self._active.add(stream_id)
        file = None
        try:
            os.makedirs(self.stream_dir, exist_ok=True)
            # "a+b" creates without truncating: whether this is a fresh
            # stream or a crash recovery is decided by the file size
            # *after* the lock is held, never before.
            file = open(path, "a+b")
            if fcntl is not None:
                try:
                    fcntl.lockf(file, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    raise StreamBusyError(
                        f"stream {stream_id!r} is locked by another worker"
                    ) from None
            file.seek(0, os.SEEK_END)
            resumed = file.tell() > 0
            kwargs = {"policy": policy, "resume": resumed}
            if chunk_records is not None:
                kwargs["chunk_records"] = chunk_records
            compressor = engine.open_stream(file, **kwargs)
            return StreamSession(stream_id, path, compressor, resumed, self, file)
        except BaseException:
            if file is not None and not file.closed:
                file.close()
            self._release(stream_id)
            raise

    def _release(self, stream_id: str) -> None:
        with self._lock:
            self._active.discard(stream_id)

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)
