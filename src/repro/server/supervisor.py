"""Pre-fork worker-pool supervisor for ``tcgen-serve``.

``tcgen-serve`` runs as a small process tree::

    supervisor (this module)          asyncio: HTTP gateway, SIGCHLD
    ├── worker 0  (TraceServer)       asyncio: framed TCP daemon
    ├── worker 1  (TraceServer)
    └── ...

Socket strategy
---------------

The supervisor binds everything *before* forking and keeps every
listening descriptor open for its whole life:

- **Service port** — one listening socket per worker, all bound to the
  same ``host:port`` with ``SO_REUSEPORT``, so the kernel load-balances
  incoming connections across workers with no accept lock and no
  thundering herd.  Where ``SO_REUSEPORT`` is unavailable (or the bind
  fails), a single pre-fork socket is shared by every worker instead —
  same semantics, kernel wakes one accaptor per connection, slightly
  worse balance.
- **Control ports** — one private loopback socket per worker (port 0),
  bound pre-fork so the supervisor knows every worker's address without
  any IPC.  The HTTP gateway routes through these, which is what makes
  consistent-hash routing *deterministic*: the gateway picks the worker,
  not the kernel.

Because fork shares file descriptions, the supervisor's copy of each
socket keeps the port alive across worker crashes: connections arriving
while a worker is down queue in the listen backlog and are served by the
restarted worker — the same file description — instead of being refused.

Lifecycle
---------

Workers are forked directly (no exec): each child resets inherited
asyncio/signal state, closes descriptors belonging to siblings and the
gateway, and runs :class:`repro.server.daemon.TraceServer` on its two
sockets until SIGTERM.  The supervisor reaps on SIGCHLD and restarts
crashed workers with exponential backoff (``restart_backoff_s`` doubling
to ``restart_backoff_max_s``, reset after ``restart_reset_s`` of clean
uptime).  SIGTERM/SIGINT to the supervisor forwards SIGTERM to every
worker, waits ``drain_timeout_s`` for in-flight requests to finish,
SIGKILLs stragglers, and exits 0 — printing the same canonical
``listening``/``drained`` stderr lines a single-process daemon printed,
so operators and tests observe an unchanged contract.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
import os
import signal
import socket
import sys
import time
import traceback

from repro.server.daemon import TraceServer
from repro.server.limits import ServerConfig

#: Listen backlog for every socket the supervisor binds.
BACKLOG = 128


def _log(message: str) -> None:
    sys.stderr.write(f"tcgen-serve: {message}\n")
    sys.stderr.flush()


def _reap_stragglers() -> None:
    """Collect any remaining child exit statuses without blocking."""
    try:
        while os.waitpid(-1, os.WNOHANG)[0] != 0:
            pass
    except (ChildProcessError, OSError):
        pass


def bind_socket(host: str, port: int, *, reuse_port: bool) -> socket.socket:
    """Bind one listening socket (family resolved from ``host``)."""
    infos = socket.getaddrinfo(
        host, port, type=socket.SOCK_STREAM, flags=socket.AI_PASSIVE
    )
    family, sock_type, proto, _, addr = infos[0]
    sock = socket.socket(family, sock_type, proto)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(addr)
        sock.listen(BACKLOG)
    except BaseException:
        sock.close()
        raise
    return sock


def bind_service_sockets(
    host: str, port: int, count: int
) -> tuple[list[socket.socket], int, bool]:
    """Bind the shared service port: ``count`` SO_REUSEPORT sockets, or
    one shared socket where that fails.  Returns ``(sockets,
    resolved_port, reuseport_used)``."""
    if hasattr(socket, "SO_REUSEPORT"):
        socks: list[socket.socket] = []
        resolved = port
        try:
            for _ in range(count):
                sock = bind_socket(host, resolved, reuse_port=True)
                if resolved == 0:
                    resolved = sock.getsockname()[1]
                socks.append(sock)
            return socks, resolved, True
        except OSError:
            for sock in socks:
                sock.close()
    sock = bind_socket(host, port, reuse_port=False)
    return [sock], sock.getsockname()[1], False


class _WorkerSlot:
    """One worker position: its sockets survive the process occupying it."""

    __slots__ = (
        "index", "socks", "control_port", "pid", "started_at",
        "backoff", "restarts",
    )

    def __init__(
        self,
        index: int,
        socks: list[socket.socket],
        control_port: int,
        initial_backoff: float,
    ) -> None:
        self.index = index
        self.socks = socks
        self.control_port = control_port
        self.pid: int | None = None
        self.started_at = 0.0
        self.backoff = initial_backoff
        self.restarts = 0


class Supervisor:
    """Owns the sockets, the worker pool, and the gateway (module docs)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config.validated()
        self.slots: list[_WorkerSlot] = []
        self.port = 0
        self.reuseport = False
        self._draining = False
        self._done: asyncio.Event | None = None
        # Strong refs to in-flight restart/shutdown tasks: the loop keeps
        # only weak ones, so without this set a task could be collected
        # mid-backoff and its exceptions silently lost (TC204).
        self._tasks: set[asyncio.Task] = set()
        self._gateway_sock: socket.socket | None = None
        self._http_server: asyncio.base_events.Server | None = None
        self._gateway = None

    # -- setup ---------------------------------------------------------------

    def _bind(self) -> None:
        count = self.config.resolved_workers()
        service, self.port, self.reuseport = bind_service_sockets(
            self.config.host, self.config.port, count
        )
        for index in range(count):
            listen = service[index] if self.reuseport else service[0]
            control = bind_socket("127.0.0.1", 0, reuse_port=False)
            self.slots.append(
                _WorkerSlot(
                    index,
                    [listen, control],
                    control.getsockname()[1],
                    self.config.restart_backoff_s,
                )
            )

    # -- worker processes ----------------------------------------------------

    def _spawn(self, slot: _WorkerSlot, verb: str = "started") -> None:
        pid = os.fork()
        if pid == 0:
            self._worker_main(slot)  # never returns
        slot.pid = pid
        slot.started_at = time.monotonic()
        _log(f"worker {slot.index} {verb} (pid {pid})")

    def _worker_main(self, slot: _WorkerSlot) -> None:
        """Child-process body: shed inherited supervisor state, serve."""
        status = 1
        try:
            signal.set_wakeup_fd(-1)
            for sig in (signal.SIGTERM, signal.SIGINT, signal.SIGCHLD):
                signal.signal(sig, signal.SIG_DFL)
            # Restart forks happen inside the supervisor's running loop;
            # clear the inherited marker so the child can start its own.
            asyncio.events._set_running_loop(None)
            asyncio.set_event_loop(None)
            mine = {sock.fileno() for sock in slot.socks}
            for other in self.slots:
                for sock in other.socks:
                    if sock.fileno() not in mine:
                        try:
                            sock.close()
                        except OSError:  # pragma: no cover
                            pass
            if self._gateway_sock is not None:
                try:
                    self._gateway_sock.close()
                except OSError:  # pragma: no cover
                    pass
            config = replace(self.config, worker_id=slot.index)
            server = TraceServer(config)
            status = asyncio.run(server.run(list(slot.socks)))
        except BaseException:  # noqa: BLE001 - the child must never unwind into the parent's stack
            traceback.print_exc()
            status = 1
        finally:
            sys.stderr.flush()
            os._exit(status)

    def _slot_for(self, pid: int) -> _WorkerSlot | None:
        for slot in self.slots:
            if slot.pid == pid:
                return slot
        return None

    # -- supervision loop ----------------------------------------------------

    def _on_sigchld(self) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except (ChildProcessError, OSError):
                return
            if pid == 0:
                return
            slot = self._slot_for(pid)
            if slot is None:
                continue
            slot.pid = None
            if self._draining:
                continue
            if os.WIFSIGNALED(status):
                detail = f"killed by signal {os.WTERMSIG(status)}"
            else:
                detail = f"exit status {os.WEXITSTATUS(status)}"
            _log(f"worker {slot.index} died ({detail}); restarting")
            self._background(self._restart(slot))

    def _background(self, coro) -> None:
        """Spawn ``coro`` keeping a strong reference until it finishes."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _restart(self, slot: _WorkerSlot) -> None:
        uptime = time.monotonic() - slot.started_at
        if uptime >= self.config.restart_reset_s:
            slot.backoff = self.config.restart_backoff_s
        delay = slot.backoff
        slot.backoff = min(slot.backoff * 2, self.config.restart_backoff_max_s)
        await asyncio.sleep(delay)
        if self._draining:
            return
        slot.restarts += 1
        self._spawn(slot, verb="restarted")

    async def _shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        if self._http_server is not None:
            self._http_server.close()
        for slot in self.slots:
            if slot.pid is not None:
                try:
                    os.kill(slot.pid, signal.SIGTERM)
                except ProcessLookupError:
                    slot.pid = None
        deadline = time.monotonic() + self.config.drain_timeout_s + 5.0
        while time.monotonic() < deadline and any(
            slot.pid is not None for slot in self.slots
        ):
            await asyncio.sleep(0.05)
        for slot in self.slots:
            if slot.pid is not None:
                _log(f"worker {slot.index} did not drain; killing")
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                slot.pid = None
        _reap_stragglers()
        if self._http_server is not None:
            await self._http_server.wait_closed()
        assert self._done is not None
        self._done.set()

    # -- gateway -------------------------------------------------------------

    async def _start_gateway(self) -> None:
        from repro.server.httpgw import HttpGateway

        try:
            self._gateway_sock = bind_socket(
                self.config.host, self.config.http_port, reuse_port=False
            )
        except OSError as exc:
            # A busy default port must not take the TCP service down with
            # it; operators who need the gateway pass --http-port.
            _log(f"warning: http gateway disabled ({exc})")
            return
        self._gateway = HttpGateway(
            self.config,
            [(slot.index, "127.0.0.1", slot.control_port) for slot in self.slots],
        )
        self._http_server = await asyncio.start_server(
            self._gateway.handle_connection,
            sock=self._gateway_sock,
            limit=1 << 20,
        )
        port = self._gateway_sock.getsockname()[1]
        _log(f"http gateway on {self.config.host}:{port}")

    # -- entry ---------------------------------------------------------------

    async def _async_main(self) -> int:
        loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        loop.add_signal_handler(signal.SIGCHLD, self._on_sigchld)
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: self._background(self._shutdown())
            )
        if self.config.http_enabled:
            await self._start_gateway()
        await self._done.wait()
        _log("drained, exiting")
        return 0

    def run(self) -> int:
        self._bind()
        mode = "SO_REUSEPORT" if self.reuseport else "shared pre-fork socket"
        # First stderr line is load-bearing: tools parse the bound port
        # from it exactly as they did for the single-process daemon.
        _log(f"listening on {self.config.host}:{self.port}")
        _log(f"pool: {len(self.slots)} worker(s) via {mode}")
        for slot in self.slots:
            self._spawn(slot)
        return asyncio.run(self._async_main())


def run_pool(config: ServerConfig) -> int:
    """Run the full serving tier (pool + gateway); returns the exit code."""
    return Supervisor(config).run()
