"""Exception hierarchy for the TCgen reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecError(ReproError):
    """Base class for trace-specification problems."""


class LexError(SpecError):
    """Raised when the specification text contains an invalid token.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"lex error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(SpecError):
    """Raised when the token stream does not match the TCgen grammar.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"parse error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ValidationError(SpecError):
    """Raised when a syntactically valid specification is semantically wrong.

    Examples: a table size that is not a power of two, a PC definition that
    names a missing field, or a field with no predictors.
    """


class CodegenError(ReproError):
    """Raised when source generation or compilation of generated code fails."""


class TraceFormatError(ReproError):
    """Raised when raw trace bytes do not match the declared record format."""


class CompressedFormatError(ReproError):
    """Raised when a compressed blob is corrupt, truncated, or mismatched."""


class ChecksumError(CompressedFormatError):
    """Raised when a v3 container section fails its CRC32C check.

    ``chunk_index`` is the 0-based index of the damaged chunk (``None``
    when the container header, global section, or trailer is damaged) and
    ``offset`` is the byte offset of the damaged section inside the blob.
    """

    def __init__(
        self, message: str, chunk_index: int | None = None, offset: int | None = None
    ) -> None:
        where = []
        if chunk_index is not None:
            where.append(f"chunk {chunk_index}")
        if offset is not None:
            where.append(f"byte offset {offset}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"{message}{suffix}")
        self.chunk_index = chunk_index
        self.offset = offset


class TruncatedContainerError(CompressedFormatError):
    """Raised when a container blob ends before its framing says it should.

    ``offset`` is the byte offset at which more data was expected.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        suffix = f" (byte offset {offset})" if offset is not None else ""
        super().__init__(f"{message}{suffix}")
        self.offset = offset
