"""Exception hierarchy for the TCgen reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecError(ReproError):
    """Base class for trace-specification problems."""


class LexError(SpecError):
    """Raised when the specification text contains an invalid token.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"lex error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(SpecError):
    """Raised when the token stream does not match the TCgen grammar.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"parse error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ValidationError(SpecError):
    """Raised when a syntactically valid specification is semantically wrong.

    Examples: a table size that is not a power of two, a PC definition that
    names a missing field, or a field with no predictors.
    """


class CodegenError(ReproError):
    """Raised when source generation or compilation of generated code fails."""


class NativeBackendError(CodegenError):
    """Raised when the in-process native fast path cannot be used.

    Covers every reason the shared-library backend is unavailable: no C
    compiler on PATH, a failed or crashed build, a corrupt cached
    artifact that could not be rebuilt, an ABI/fingerprint mismatch in a
    loaded library, or the ``TCGEN_NATIVE=0`` escape hatch.  With
    ``backend="auto"`` callers catch this and fall back to the Python
    kernels; with ``backend="native"`` it propagates.
    """


class NumpyBackendError(CodegenError):
    """Raised when the NumPy columnar backend cannot be used.

    Covers the ``TCGEN_NUMPY=0`` escape hatch and (defensively) a missing
    or broken NumPy installation.  With ``backend="auto"`` callers catch
    this and fall back to the Python kernels; with ``backend="numpy"`` it
    propagates.
    """


class TraceFormatError(ReproError):
    """Raised when raw trace bytes do not match the declared record format."""


class PredicateError(ReproError):
    """Raised when a query predicate fails to parse or validate.

    Covers syntax errors in the ``tcgen-query`` predicate language and
    semantically invalid predicates (unknown field names, field numbers
    out of range for the specification being queried).
    """


class CompressedFormatError(ReproError):
    """Raised when a compressed blob is corrupt, truncated, or mismatched."""


class ChecksumError(CompressedFormatError):
    """Raised when a v3 container section fails its CRC32C check.

    ``chunk_index`` is the 0-based index of the damaged chunk (``None``
    when the container header, global section, or trailer is damaged) and
    ``offset`` is the byte offset of the damaged section inside the blob.
    """

    def __init__(
        self, message: str, chunk_index: int | None = None, offset: int | None = None
    ) -> None:
        where = []
        if chunk_index is not None:
            where.append(f"chunk {chunk_index}")
        if offset is not None:
            where.append(f"byte offset {offset}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"{message}{suffix}")
        self.chunk_index = chunk_index
        self.offset = offset


class StreamClosedError(CompressedFormatError):
    """Raised when resuming a v4 stream that already carries its trailer.

    A closed stream is complete — there is nothing to resume.  Getting
    this error during crash recovery is *good news*: the writer died
    after the close became durable.
    """


class TruncatedContainerError(CompressedFormatError):
    """Raised when a container blob ends before its framing says it should.

    ``offset`` is the byte offset at which more data was expected.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        suffix = f" (byte offset {offset})" if offset is not None else ""
        super().__init__(f"{message}{suffix}")
        self.offset = offset


class OperationCancelled(ReproError):
    """Raised inside a compression/decompression pipeline whose caller
    requested cancellation (deadline fired, connection dropped).

    Raised by the ``cancel=`` hooks threaded through
    :func:`repro.runtime.parallel.map_ordered` and
    :class:`~repro.runtime.engine.TraceEngine`; work aborts at the next
    chunk boundary, leaving no partial output.
    """


class ServiceError(ReproError):
    """Base class for trace-compression-service failures (client/server)."""


class ProtocolError(ServiceError):
    """Raised when a wire frame or header violates the service protocol."""


class BackpressureError(ServiceError):
    """Raised when the server's request queue is full.

    ``retry_after`` is the server's suggested wait in seconds before
    retrying; :class:`repro.client.TraceClient` honors it automatically.
    """

    def __init__(self, message: str, retry_after: float = 0.1) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline fired before the work finished."""


class ServiceUnavailableError(ServiceError):
    """Raised when the server cannot be reached or is shutting down."""


class RemoteError(ServiceError):
    """Raised when the server reports an internal (non-typed) failure."""
