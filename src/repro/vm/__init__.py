"""A miniature load/store virtual machine for honest trace generation.

The paper's traces come from real programs instrumented with ATOM: every
record's PC is a real static instruction and every address a real
register-computed effective address.  The synthetic generators in
:mod:`repro.traces` approximate that statistically; this package goes one
step further and *executes programs*:

- :mod:`repro.vm.isa` — a small RISC instruction set (16 registers,
  64-bit memory operations, branches and jump-and-link);
- :mod:`repro.vm.assembler` — a two-pass assembler with labels, ``.data``
  directives, and call/return pseudo-instructions;
- :mod:`repro.vm.machine` — the interpreter, with a memory-event trace
  hook that records (PC, effective address, value, is-store) for every
  load and store;
- :mod:`repro.vm.programs` — a library of classic kernels (matrix
  multiply, linked-list traversal, binary search, hashing, quicksort,
  string search, recursion, stencils) written in the assembly language;
- :mod:`repro.vm.tracing` — bridges executed programs to the evaluation
  trace types (store addresses / cache-miss addresses / load values).

Traces produced here flow through exactly the same builders, compressors,
and benchmarks as the synthetic suite.
"""

from repro.vm.assembler import AssemblyError, assemble
from repro.vm.machine import ExecutionError, Machine
from repro.vm.programs import program_names, program_source
from repro.vm.tracing import run_program, vm_trace

__all__ = [
    "AssemblyError",
    "ExecutionError",
    "Machine",
    "assemble",
    "program_names",
    "program_source",
    "run_program",
    "vm_trace",
]
