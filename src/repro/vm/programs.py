"""A library of classic kernels written for the miniature machine.

Each program initializes its own data (using a 64-bit linear congruential
generator where pseudo-random input is needed) and leaves a verifiable
result in memory, so the test suite can check both the *computation* and
the *trace* it produces.  The kernels cover the memory-behaviour families
the paper's benchmarks exhibit: dense loop nests, pointer chasing, search
trees/arrays, hashing, sorting, byte scanning, deep recursion, and
stencils.
"""

from __future__ import annotations

from repro.errors import ReproError

#: 64-bit LCG constants used by several kernels (Knuth's MMIX values).
_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407


_MATMUL = f"""
# C = A x B for N x N 64-bit matrices; A and B are LCG-filled.
.text
main:
    li   x4, 20                 # N
    # ---- fill A and B with LCG values ----
    li   x10, 12345             # lcg state
    la   x6, A
    la   x7, B
    mul  x5, x4, x4             # N*N
    li   x1, 0
fill:
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    st   x10, 0(x6)
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    st   x10, 0(x7)
    addi x6, x6, 8
    addi x7, x7, 8
    addi x1, x1, 1
    blt  x1, x5, fill
    # ---- triple loop ----
    li   x1, 0                  # i
iloop:
    li   x2, 0                  # j
jloop:
    li   x3, 0                  # k
    li   x5, 0                  # acc
kloop:
    mul  x6, x1, x4             # A[i*N+k]
    add  x6, x6, x3
    shli x6, x6, 3
    la   x7, A
    add  x7, x7, x6
    ld   x8, 0(x7)
    mul  x6, x3, x4             # B[k*N+j]
    add  x6, x6, x2
    shli x6, x6, 3
    la   x7, B
    add  x7, x7, x6
    ld   x9, 0(x7)
    mul  x8, x8, x9
    add  x5, x5, x8
    addi x3, x3, 1
    blt  x3, x4, kloop
    mul  x6, x1, x4             # C[i*N+j] = acc
    add  x6, x6, x2
    shli x6, x6, 3
    la   x7, C
    add  x7, x7, x6
    st   x5, 0(x7)
    addi x2, x2, 1
    blt  x2, x4, jloop
    addi x1, x1, 1
    blt  x1, x4, iloop
    halt

.data
A:  .space 3200
B:  .space 3200
C:  .space 3200
"""


_LIST_SUM = f"""
# Build a linked list threaded through an array in LCG-shuffled order,
# then traverse it eight times summing payloads (mcf-style chasing).
# Node layout: [next_ptr, payload], 16 bytes; count in x4.
.text
main:
    li   x4, 1500               # node count
    li   x10, 99                # lcg state
    # thread node i -> node ((i * 769) % count) ... a fixed coprime walk
    li   x1, 0                  # i
    la   x2, nodes
build:
    muli x5, x1, 769
    li   x6, 1500
    rem  x5, x5, x6
    addi x5, x5, 1              # successor index (i*769 mod n) + 1
    blt  x5, x4, inrange
    li   x5, 0
inrange:
    muli x6, x5, 16
    la   x7, nodes
    add  x6, x7, x6             # successor address
    muli x7, x1, 16
    la   x8, nodes
    add  x7, x8, x7             # this node's address
    st   x6, 0(x7)              # next pointer
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    andi x9, x10, 1023          # small payload
    st   x9, 8(x7)
    addi x1, x1, 1
    blt  x1, x4, build
    # ---- traverse 8 times ----
    li   x11, 0                 # total
    li   x12, 0                 # pass
passes:
    la   x1, nodes              # cursor
    li   x2, 0                  # visited
walk:
    ld   x3, 8(x1)              # payload
    add  x11, x11, x3
    ld   x1, 0(x1)              # follow next
    addi x2, x2, 1
    blt  x2, x4, walk
    addi x12, x12, 1
    li   x5, 8
    blt  x12, x5, passes
    la   x6, total
    st   x11, 0(x6)
    halt

.data
total:  .space 8
nodes:  .space 24000
"""


_BINSEARCH = f"""
# 2000 binary searches of LCG keys over a sorted 1024-element array.
.text
main:
    li   x4, 1024               # array length
    # fill sorted array: value = 7*i + 3
    li   x1, 0
    la   x2, sorted
fill:
    muli x3, x1, 7
    addi x3, x3, 3
    st   x3, 0(x2)
    addi x2, x2, 8
    addi x1, x1, 1
    blt  x1, x4, fill
    # ---- searches ----
    li   x10, 4242              # lcg state
    li   x11, 0                 # found counter
    li   x12, 0                 # search number
searches:
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    shri x5, x10, 17
    li   x6, 7200
    rem  x5, x5, x6             # key in 0..7199
    li   x1, 0                  # lo
    mv   x2, x4                 # hi
loop:
    bge  x1, x2, miss
    add  x3, x1, x2
    shri x3, x3, 1              # mid
    shli x6, x3, 3
    la   x7, sorted
    add  x7, x7, x6
    ld   x8, 0(x7)
    beq  x8, x5, hit
    blt  x8, x5, goright
    mv   x2, x3                 # hi = mid
    j    loop
goright:
    addi x1, x3, 1              # lo = mid + 1
    j    loop
hit:
    addi x11, x11, 1
miss:
    addi x12, x12, 1
    li   x6, 2000
    blt  x12, x6, searches
    la   x7, found
    st   x11, 0(x7)
    halt

.data
found:  .space 8
sorted: .space 8192
"""


_HASHTABLE = f"""
# Linear-probing hash table: 1200 inserts then 2400 lookups (gap/parser).
# Slot layout: 8-byte key (0 = empty); table has 4096 slots.
.text
main:
    li   x4, 4096               # slots
    li   x10, 7                 # lcg state
    li   x12, 0                 # insert counter
inserts:
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    shri x5, x10, 13
    andi x5, x5, 1048575        # 20-bit key
    addi x5, x5, 1              # never zero
    andi x6, x5, 4095           # home slot
probe_i:
    shli x7, x6, 3
    la   x8, table
    add  x8, x8, x7
    ld   x9, 0(x8)
    beq  x9, x0, store_i        # empty slot
    beq  x9, x5, next_i         # already present
    addi x6, x6, 1
    andi x6, x6, 4095
    j    probe_i
store_i:
    st   x5, 0(x8)
next_i:
    addi x12, x12, 1
    li   x7, 1200
    blt  x12, x7, inserts
    # ---- lookups (same key distribution, so half hit) ----
    li   x10, 7                 # reset lcg: first 1200 keys hit
    li   x12, 0
    li   x11, 0                 # hits
lookups:
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    shri x5, x10, 13
    andi x5, x5, 1048575
    addi x5, x5, 1
    andi x6, x5, 4095
probe_l:
    shli x7, x6, 3
    la   x8, table
    add  x8, x8, x7
    ld   x9, 0(x8)
    beq  x9, x0, next_l         # miss
    beq  x9, x5, hit_l
    addi x6, x6, 1
    andi x6, x6, 4095
    j    probe_l
hit_l:
    addi x11, x11, 1
next_l:
    addi x12, x12, 1
    li   x7, 2400
    blt  x12, x7, lookups
    la   x7, hits
    st   x11, 0(x7)
    halt

.data
hits:   .space 8
table:  .space 32768
"""


_QUICKSORT = f"""
# Iterative quicksort (explicit range stack) of 1200 LCG values.
.text
main:
    li   x4, 1200               # length
    li   x10, 31415
    li   x1, 0
    la   x2, values
fill:
    muli x10, x10, {_LCG_MUL}
    addi x10, x10, {_LCG_ADD}
    shri x3, x10, 20
    andi x3, x3, 65535
    st   x3, 0(x2)
    addi x2, x2, 8
    addi x1, x1, 1
    blt  x1, x4, fill
    # ---- push initial range [0, n-1] ----
    la   x13, stack             # stack cursor
    li   x1, 0
    st   x1, 0(x13)
    addi x2, x4, -1
    st   x2, 8(x13)
    addi x13, x13, 16
qsloop:
    la   x5, stack
    beq  x13, x5, done          # stack empty
    addi x13, x13, -16
    ld   x1, 0(x13)             # lo
    ld   x2, 8(x13)             # hi
    bge  x1, x2, qsloop
    # ---- Lomuto partition: pivot = values[hi] ----
    shli x5, x2, 3
    la   x6, values
    add  x5, x6, x5
    ld   x7, 0(x5)              # pivot
    addi x8, x1, -1             # i
    mv   x9, x1                 # j
part:
    bge  x9, x2, endpart
    shli x5, x9, 3
    la   x6, values
    add  x5, x6, x5
    ld   x11, 0(x5)             # values[j]
    bge  x11, x7, skip
    addi x8, x8, 1              # i++
    shli x12, x8, 3
    la   x6, values
    add  x12, x6, x12
    ld   x3, 0(x12)             # swap values[i], values[j]
    st   x11, 0(x12)
    st   x3, 0(x5)
skip:
    addi x9, x9, 1
    j    part
endpart:
    addi x8, x8, 1              # pivot position = i + 1
    shli x5, x8, 3
    la   x6, values
    add  x5, x6, x5
    ld   x3, 0(x5)              # swap values[p], values[hi]
    shli x12, x2, 3
    add  x12, x6, x12
    ld   x11, 0(x12)
    st   x11, 0(x5)
    st   x3, 0(x12)
    # ---- push [lo, p-1] and [p+1, hi] ----
    addi x3, x8, -1
    st   x1, 0(x13)
    st   x3, 8(x13)
    addi x13, x13, 16
    addi x3, x8, 1
    st   x3, 0(x13)
    st   x2, 8(x13)
    addi x13, x13, 16
    j    qsloop
done:
    halt

.data
values: .space 9600
stack:  .space 4096
"""


_STRSEARCH = """
# Naive substring search: count occurrences of a 5-byte needle in a
# 6000-byte text of a small alphabet (gzip/parser-style byte scanning).
.text
main:
    li   x4, 6000               # text length
    # fill text: byte i = (i*i + i/7) % 17  (quasi-periodic "language")
    li   x1, 0
    la   x2, text
fill:
    mul  x3, x1, x1
    li   x5, 7
    div  x6, x1, x5
    add  x3, x3, x6
    li   x5, 17
    rem  x3, x3, x5
    stb  x3, 0(x2)
    addi x2, x2, 1
    addi x1, x1, 1
    blt  x1, x4, fill
    # needle = text[100..104], stored separately
    la   x2, text
    la   x3, needle
    li   x1, 0
copy:
    addi x5, x1, 100
    la   x2, text
    add  x5, x2, x5
    ldb  x6, 0(x5)
    la   x3, needle
    add  x7, x3, x1
    stb  x6, 0(x7)
    addi x1, x1, 1
    li   x5, 5
    blt  x1, x5, copy
    # ---- scan ----
    li   x11, 0                 # matches
    li   x1, 0                  # position
    addi x4, x4, -5
scan:
    li   x2, 0                  # needle offset
cmp:
    add  x5, x1, x2
    la   x6, text
    add  x5, x6, x5
    ldb  x7, 0(x5)
    la   x6, needle
    add  x8, x6, x2
    ldb  x9, 0(x8)
    bne  x7, x9, nomatch
    addi x2, x2, 1
    li   x5, 5
    blt  x2, x5, cmp
    addi x11, x11, 1
nomatch:
    addi x1, x1, 1
    blt  x1, x4, scan
    la   x5, matches
    st   x11, 0(x5)
    halt

.data
matches: .space 8
needle:  .space 8
text:    .space 6008
"""


_FIB = """
# Doubly recursive Fibonacci (deep call-stack traffic).  fib(17) = 1597.
.text
main:
    li   x1, 17
    call fib
    la   x3, result
    st   x2, 0(x3)
    halt

# fib(n): argument in x1, result in x2; uses the real machine stack.
fib:
    li   x3, 2
    blt  x1, x3, base
    addi sp, sp, -24
    st   ra, 0(sp)
    st   x1, 8(sp)
    addi x1, x1, -1
    call fib
    st   x2, 16(sp)             # fib(n-1)
    ld   x1, 8(sp)
    addi x1, x1, -2
    call fib
    ld   x3, 16(sp)
    add  x2, x2, x3
    ld   ra, 0(sp)
    addi sp, sp, 24
    ret
base:
    mv   x2, x1                 # fib(0)=0, fib(1)=1
    ret

.data
result: .space 8
"""


_STENCIL = """
# 1-D three-point stencil: 12 Jacobi sweeps over 1600 cells (swim/mgrid).
.text
main:
    li   x4, 1600               # cells
    # init: cell i = i ^ (i << 3)
    li   x1, 0
    la   x2, grid_a
init:
    shli x3, x1, 3
    xor  x3, x3, x1
    st   x3, 0(x2)
    addi x2, x2, 8
    addi x1, x1, 1
    blt  x1, x4, init
    li   x12, 0                 # sweep
sweeps:
    li   x1, 1                  # interior cells only
    addi x9, x4, -1
cells:
    shli x5, x1, 3
    la   x6, grid_a
    add  x5, x6, x5
    ld   x7, -8(x5)             # left
    ld   x8, 0(x5)              # centre
    ld   x10, 8(x5)             # right
    add  x7, x7, x8
    add  x7, x7, x10
    li   x8, 3
    div  x7, x7, x8             # average
    shli x5, x1, 3
    la   x6, grid_b
    add  x5, x6, x5
    st   x7, 0(x5)
    addi x1, x1, 1
    blt  x1, x9, cells
    # copy back interior
    li   x1, 1
copy:
    shli x5, x1, 3
    la   x6, grid_b
    add  x7, x6, x5
    ld   x8, 0(x7)
    la   x6, grid_a
    add  x7, x6, x5
    st   x8, 0(x7)
    addi x1, x1, 1
    blt  x1, x9, copy
    addi x12, x12, 1
    li   x5, 12
    blt  x12, x5, sweeps
    halt

.data
grid_a: .space 12800
grid_b: .space 12800
"""


_BFS = """
# Breadth-first search over a 32x32 grid graph (implicit 4-neighbour
# adjacency) from node 0: queue-driven irregular traversal (vpr/twolf).
.text
main:
    li   x4, 1024               # node count
    la   x1, queue
    st   x0, 0(x1)              # enqueue node 0
    li   x2, 1                  # tail
    li   x3, 0                  # head
    la   x5, visited
    li   x6, 1
    stb  x6, 0(x5)              # visited[0] = 1
    li   x11, 0                 # visit counter
bfsloop:
    bge  x3, x2, bfsdone
    shli x5, x3, 3
    la   x6, queue
    add  x5, x6, x5
    ld   x7, 0(x5)              # node
    addi x3, x3, 1
    addi x11, x11, 1
    # ---- neighbour node-32 (up) ----
    addi x8, x7, -32
    blt  x8, x0, try_down
    call visit
try_down:
    addi x8, x7, 32
    bge  x8, x4, try_left
    call visit
try_left:
    li   x9, 32
    rem  x10, x7, x9
    beq  x10, x0, try_right     # left edge of the row
    addi x8, x7, -1
    call visit
try_right:
    li   x9, 32
    rem  x10, x7, x9
    li   x5, 31
    beq  x10, x5, next          # right edge of the row
    addi x8, x7, 1
    call visit
next:
    j    bfsloop
bfsdone:
    la   x5, visits
    st   x11, 0(x5)
    st   x2, 8(x5)              # enqueued count
    halt

# visit(x8 = candidate node): mark and enqueue if new.  Clobbers x9, x10.
visit:
    la   x9, visited
    add  x9, x9, x8
    ldb  x10, 0(x9)
    bne  x10, x0, visited_already
    li   x10, 1
    stb  x10, 0(x9)
    shli x10, x2, 3
    la   x9, queue
    add  x9, x9, x10
    st   x8, 0(x9)
    addi x2, x2, 1
visited_already:
    ret

.data
visits:  .space 16
visited: .space 1024
queue:   .space 8192
"""


_TRANSPOSE = """
# Out-of-place transpose of a 48x48 matrix: row-major reads against
# column-major writes (the stride mix of apsi/applu directional sweeps).
.text
main:
    li   x4, 48                 # N
    # fill A[i] = i * 2654435761
    mul  x5, x4, x4
    li   x1, 0
    la   x2, A
fill:
    muli x3, x1, 2654435761
    st   x3, 0(x2)
    addi x2, x2, 8
    addi x1, x1, 1
    blt  x1, x5, fill
    # B[j*N+i] = A[i*N+j], three passes (reuse makes misses interesting)
    li   x12, 0                 # pass
passes:
    li   x1, 0                  # i
rows:
    li   x2, 0                  # j
cols:
    mul  x5, x1, x4
    add  x5, x5, x2
    shli x5, x5, 3
    la   x6, A
    add  x5, x6, x5
    ld   x7, 0(x5)
    mul  x5, x2, x4
    add  x5, x5, x1
    shli x5, x5, 3
    la   x6, B
    add  x5, x6, x5
    st   x7, 0(x5)
    addi x2, x2, 1
    blt  x2, x4, cols
    addi x1, x1, 1
    blt  x1, x4, rows
    addi x12, x12, 1
    li   x5, 3
    blt  x12, x5, passes
    halt

.data
A: .space 18432
B: .space 18432
"""


#: All programs, keyed by name.
PROGRAMS: dict[str, str] = {
    "matmul": _MATMUL,
    "list_sum": _LIST_SUM,
    "binsearch": _BINSEARCH,
    "hashtable": _HASHTABLE,
    "quicksort": _QUICKSORT,
    "strsearch": _STRSEARCH,
    "fib": _FIB,
    "stencil": _STENCIL,
    "bfs": _BFS,
    "transpose": _TRANSPOSE,
}


def program_names() -> list[str]:
    """All kernel names."""
    return list(PROGRAMS)


def program_source(name: str) -> str:
    """Assembly source of one kernel."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise ReproError(
            f"unknown program {name!r}; available: {', '.join(PROGRAMS)}"
        ) from None
