"""Interpreter for the miniature machine, with memory-event tracing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.traces.events import EventBlock
from repro.vm.isa import (
    DATA_BASE,
    INSTRUCTION_BYTES,
    Op,
    Program,
    REGISTER_COUNT,
    SP,
    STACK_TOP,
    TEXT_BASE,
)

_MASK64 = (1 << 64) - 1
_PAGE_BITS = 12
_PAGE_BYTES = 1 << _PAGE_BITS


class ExecutionError(ReproError):
    """Raised for runtime faults (bad PC, step-budget exhaustion, ...)."""


class Memory:
    """Sparse byte-addressable memory (4kB pages, zero-initialized)."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, number: int) -> bytearray:
        page = self._pages.get(number)
        if page is None:
            page = bytearray(_PAGE_BYTES)
            self._pages[number] = page
        return page

    def read(self, address: int, count: int) -> bytes:
        out = bytearray()
        while count:
            page_number, offset = divmod(address, _PAGE_BYTES)
            take = min(count, _PAGE_BYTES - offset)
            out += self._page(page_number)[offset : offset + take]
            address += take
            count -= take
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        position = 0
        while position < len(data):
            page_number, offset = divmod(address + position, _PAGE_BYTES)
            take = min(len(data) - position, _PAGE_BYTES - offset)
            self._page(page_number)[offset : offset + take] = data[
                position : position + take
            ]
            position += take

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, (value & _MASK64).to_bytes(8, "little"))

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * _PAGE_BYTES


@dataclass
class TraceLog:
    """Accumulated memory events of one execution."""

    pcs: list = field(default_factory=list)
    addrs: list = field(default_factory=list)
    values: list = field(default_factory=list)
    stores: list = field(default_factory=list)

    def record(self, pc: int, addr: int, value: int, is_store: bool) -> None:
        self.pcs.append(pc)
        self.addrs.append(addr)
        self.values.append(value)
        self.stores.append(is_store)

    def to_events(self) -> EventBlock:
        return EventBlock(
            np.array(self.pcs, dtype=np.uint64),
            np.array(self.addrs, dtype=np.uint64),
            np.array(self.values, dtype=np.uint64),
            np.array(self.stores, dtype=bool),
        )


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= 1 << 63 else value


#: Stable opcode ordinals for instruction-word synthesis.
_OP_ORDINALS = {op: number for number, op in enumerate(Op)}


def encode_word(instruction) -> int:
    """Synthesize a 64-bit instruction word for instruction traces.

    The ISA has no binary encoding (the interpreter executes decoded
    structures), so instruction traces pack the decoded fields into a
    deterministic word: opcode ordinal, registers, and the low 32 bits of
    the immediate or branch target.
    """
    word = _OP_ORDINALS[instruction.op]
    word |= instruction.rd << 8
    word |= instruction.rs1 << 12
    word |= instruction.rs2 << 16
    payload = instruction.imm if instruction.target == 0 else instruction.target
    word |= (payload & 0xFFFF_FFFF) << 32
    return word


class Machine:
    """Executes an assembled program, optionally tracing memory events."""

    def __init__(
        self, program: Program, trace: bool = True, trace_instructions: bool = False
    ) -> None:
        self.program = program
        self.memory = Memory()
        if program.data:
            self.memory.write(DATA_BASE, program.data)
        self.registers = [0] * REGISTER_COUNT
        self.registers[SP] = STACK_TOP
        self.pc = TEXT_BASE
        self.halted = False
        self.steps = 0
        self.trace: TraceLog | None = TraceLog() if trace else None
        # Optional full instruction trace: (pc, synthesized instruction
        # word) per executed instruction — the trace type MACHE and SBC
        # were originally designed for.
        self.trace_instructions = trace_instructions
        self.instruction_pcs: list = []
        self.instruction_words: list = []

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = 5_000_000) -> int:
        """Run until ``halt`` or the step budget; returns executed steps."""
        while not self.halted:
            if self.steps >= max_steps:
                raise ExecutionError(
                    f"step budget of {max_steps} exhausted at pc={self.pc:#x}"
                )
            self.step()
        return self.steps

    def step(self) -> None:
        """Execute one instruction."""
        index = self.program.index_of(self.pc)
        if not 0 <= index < len(self.program.instructions):
            raise ExecutionError(f"pc {self.pc:#x} outside the text segment")
        instruction = self.program.instructions[index]
        self.steps += 1
        if self.trace_instructions:
            self.instruction_pcs.append(self.pc)
            self.instruction_words.append(encode_word(instruction))
        op = instruction.op
        registers = self.registers
        next_pc = self.pc + INSTRUCTION_BYTES

        if op is Op.LI:
            self._set(instruction.rd, instruction.imm)
        elif op is Op.MV:
            self._set(instruction.rd, registers[instruction.rs1])
        elif op is Op.ADD:
            self._set(instruction.rd, registers[instruction.rs1] + registers[instruction.rs2])
        elif op is Op.SUB:
            self._set(instruction.rd, registers[instruction.rs1] - registers[instruction.rs2])
        elif op is Op.MUL:
            self._set(instruction.rd, registers[instruction.rs1] * registers[instruction.rs2])
        elif op is Op.DIV:
            divisor = _signed(registers[instruction.rs2])
            if divisor == 0:
                self._set(instruction.rd, 0)
            else:
                quotient = int(_signed(registers[instruction.rs1]) / divisor)
                self._set(instruction.rd, quotient)
        elif op is Op.REM:
            divisor = _signed(registers[instruction.rs2])
            if divisor == 0:
                self._set(instruction.rd, registers[instruction.rs1])
            else:
                dividend = _signed(registers[instruction.rs1])
                self._set(instruction.rd, dividend - int(dividend / divisor) * divisor)
        elif op is Op.AND:
            self._set(instruction.rd, registers[instruction.rs1] & registers[instruction.rs2])
        elif op is Op.OR:
            self._set(instruction.rd, registers[instruction.rs1] | registers[instruction.rs2])
        elif op is Op.XOR:
            self._set(instruction.rd, registers[instruction.rs1] ^ registers[instruction.rs2])
        elif op is Op.SHL:
            self._set(instruction.rd, registers[instruction.rs1] << (registers[instruction.rs2] & 63))
        elif op is Op.SHR:
            self._set(instruction.rd, (registers[instruction.rs1] & _MASK64) >> (registers[instruction.rs2] & 63))
        elif op is Op.ADDI:
            self._set(instruction.rd, registers[instruction.rs1] + instruction.imm)
        elif op is Op.ANDI:
            self._set(instruction.rd, registers[instruction.rs1] & instruction.imm)
        elif op is Op.MULI:
            self._set(instruction.rd, registers[instruction.rs1] * instruction.imm)
        elif op is Op.SHLI:
            self._set(instruction.rd, registers[instruction.rs1] << (instruction.imm & 63))
        elif op is Op.SHRI:
            self._set(instruction.rd, (registers[instruction.rs1] & _MASK64) >> (instruction.imm & 63))
        elif op is Op.LD:
            address = (registers[instruction.rs1] + instruction.imm) & _MASK64
            value = self.memory.read_u64(address)
            self._set(instruction.rd, value)
            if self.trace is not None:
                self.trace.record(self.pc, address, value, False)
        elif op is Op.ST:
            address = (registers[instruction.rs1] + instruction.imm) & _MASK64
            value = registers[instruction.rs2] & _MASK64
            self.memory.write_u64(address, value)
            if self.trace is not None:
                self.trace.record(self.pc, address, value, True)
        elif op is Op.LDB:
            address = (registers[instruction.rs1] + instruction.imm) & _MASK64
            value = self.memory.read(address, 1)[0]
            self._set(instruction.rd, value)
            if self.trace is not None:
                self.trace.record(self.pc, address, value, False)
        elif op is Op.STB:
            address = (registers[instruction.rs1] + instruction.imm) & _MASK64
            value = registers[instruction.rs2] & 0xFF
            self.memory.write(address, bytes([value]))
            if self.trace is not None:
                self.trace.record(self.pc, address, value, True)
        elif op is Op.BEQ:
            if registers[instruction.rs1] == registers[instruction.rs2]:
                next_pc = instruction.target
        elif op is Op.BNE:
            if registers[instruction.rs1] != registers[instruction.rs2]:
                next_pc = instruction.target
        elif op is Op.BLT:
            if _signed(registers[instruction.rs1]) < _signed(registers[instruction.rs2]):
                next_pc = instruction.target
        elif op is Op.BGE:
            if _signed(registers[instruction.rs1]) >= _signed(registers[instruction.rs2]):
                next_pc = instruction.target
        elif op is Op.J:
            next_pc = instruction.target
        elif op is Op.JAL:
            self._set(instruction.rd, next_pc)
            next_pc = instruction.target
        elif op is Op.JR:
            next_pc = registers[instruction.rs1] & _MASK64
        elif op is Op.HALT:
            self.halted = True
        else:  # pragma: no cover - exhaustive over Op
            raise ExecutionError(f"unimplemented opcode {op.value!r}")
        self.pc = next_pc

    def _set(self, register: int, value: int) -> None:
        if register != 0:  # x0 stays zero
            self.registers[register] = value & _MASK64

    # -- results ---------------------------------------------------------------

    def events(self) -> EventBlock:
        """The traced memory events of the execution so far."""
        if self.trace is None:
            raise ExecutionError("machine was created with trace=False")
        return self.trace.to_events()

    def instruction_trace(self) -> tuple[np.ndarray, np.ndarray]:
        """(pcs, instruction words) of every executed instruction."""
        if not self.trace_instructions:
            raise ExecutionError(
                "machine was created with trace_instructions=False"
            )
        return (
            np.array(self.instruction_pcs, dtype=np.uint64),
            np.array(self.instruction_words, dtype=np.uint64),
        )

    def read_words(self, label: str, count: int) -> list[int]:
        """Read ``count`` 64-bit words starting at a data label (testing aid)."""
        address = self.program.labels[label]
        return [self.memory.read_u64(address + 8 * i) for i in range(count)]
