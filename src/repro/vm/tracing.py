"""Bridging executed programs to the evaluation trace types."""

from __future__ import annotations

from repro.cachesim import CacheConfig, PAPER_CACHE
from repro.traces.builders import (
    cache_miss_address_trace,
    load_value_trace,
    store_address_trace,
)
from repro.traces.events import EventBlock
from repro.vm.assembler import assemble
from repro.vm.machine import Machine
from repro.vm.programs import program_source


def run_program(name: str, max_steps: int = 5_000_000) -> Machine:
    """Assemble and run one library kernel to completion (traced)."""
    machine = Machine(assemble(program_source(name)))
    machine.run(max_steps=max_steps)
    return machine


def vm_trace(
    name: str,
    kind: str,
    max_steps: int = 5_000_000,
    cache: CacheConfig = PAPER_CACHE,
) -> bytes:
    """Execute a kernel and derive one evaluation-format trace from it.

    ``kind`` is one of :data:`repro.traces.TRACE_KINDS`, or
    ``"instruction_words"`` for a full instruction trace (PC + synthesized
    instruction word per executed instruction — the trace type MACHE and
    SBC were originally designed for).  Unlike the synthetic suite, every
    PC here belongs to a real static instruction and every address was
    computed by executed code.
    """
    if kind == "instruction_words":
        return instruction_word_trace(name, max_steps=max_steps)
    events: EventBlock = run_program(name, max_steps=max_steps).events()
    if kind == "store_addresses":
        return store_address_trace(events)
    if kind == "cache_miss_addresses":
        return cache_miss_address_trace(events, cache)
    if kind == "load_values":
        return load_value_trace(events)
    from repro.errors import ReproError

    raise ReproError(f"unknown trace kind {kind!r}")


def instruction_word_trace(name: str, max_steps: int = 5_000_000) -> bytes:
    """Full instruction trace of a kernel, in the evaluation format."""
    from repro.tio.traceformat import VPC_FORMAT, pack_records

    machine = Machine(
        assemble(program_source(name)), trace=False, trace_instructions=True
    )
    machine.run(max_steps=max_steps)
    pcs, words = machine.instruction_trace()
    return pack_records(VPC_FORMAT, b"INS\0", [pcs, words])
