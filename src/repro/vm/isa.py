"""The instruction set of the miniature machine.

A classic three-operand load/store RISC:

- 16 general registers ``x0``-``x15``; ``x0`` is hardwired to zero.
  Convention: ``x14`` is the stack pointer (``sp``), ``x15`` the link
  register (``ra``).
- All arithmetic is 64-bit two's-complement (wrapping).
- Memory operations: ``ld``/``st`` move 64-bit little-endian words,
  ``ldb``/``stb`` single bytes; effective address = register + immediate
  displacement.
- Control flow: conditional branches compare two registers; ``jal``
  stores the return address; ``jr`` jumps through a register.
- Instructions occupy 4 bytes of the text segment, so PCs behave like the
  paper's RISC PCs (the "default instruction stride" PDATS II exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Number of general-purpose registers.
REGISTER_COUNT = 16
#: Conventional stack pointer and link register.
SP = 14
RA = 15

#: Segment bases (mirroring the synthetic suite's address-space layout).
TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000

#: Bytes per instruction slot.
INSTRUCTION_BYTES = 4


class Op(Enum):
    """Opcodes.  The comment gives the assembly operand shape."""

    LI = "li"  # li rd, imm
    LA = "la"  # la rd, label          (resolved to li at assembly)
    MV = "mv"  # mv rd, rs
    ADD = "add"  # add rd, rs1, rs2
    SUB = "sub"  # sub rd, rs1, rs2
    MUL = "mul"  # mul rd, rs1, rs2
    DIV = "div"  # div rd, rs1, rs2    (signed, trunc; x/0 = 0)
    REM = "rem"  # rem rd, rs1, rs2    (x%0 = x)
    AND = "and"  # and rd, rs1, rs2
    OR = "or"  # or rd, rs1, rs2
    XOR = "xor"  # xor rd, rs1, rs2
    SHL = "shl"  # shl rd, rs1, rs2
    SHR = "shr"  # shr rd, rs1, rs2    (logical)
    ADDI = "addi"  # addi rd, rs1, imm
    ANDI = "andi"  # andi rd, rs1, imm
    MULI = "muli"  # muli rd, rs1, imm
    SHLI = "shli"  # shli rd, rs1, imm
    SHRI = "shri"  # shri rd, rs1, imm
    LD = "ld"  # ld rd, imm(rs)
    ST = "st"  # st rs2, imm(rs1)
    LDB = "ldb"  # ldb rd, imm(rs)
    STB = "stb"  # stb rs2, imm(rs1)
    BEQ = "beq"  # beq rs1, rs2, label
    BNE = "bne"  # bne rs1, rs2, label
    BLT = "blt"  # blt rs1, rs2, label (signed)
    BGE = "bge"  # bge rs1, rs2, label (signed)
    J = "j"  # j label
    JAL = "jal"  # jal rd, label
    JR = "jr"  # jr rs
    HALT = "halt"  # halt


#: Ops whose third operand is a branch/jump target label.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
JUMP_OPS = frozenset({Op.J, Op.JAL})
MEMORY_OPS = frozenset({Op.LD, Op.ST, Op.LDB, Op.STB})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Field use depends on the opcode: ``rd``/``rs1``/``rs2`` are register
    numbers, ``imm`` an immediate or displacement, ``target`` a resolved
    text address for branches/jumps.  ``line`` is the 1-based source line
    for error reporting.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    line: int = 0


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions plus initialized data."""

    instructions: tuple[Instruction, ...]
    data: bytes  # initial contents of the data segment (at DATA_BASE)
    labels: dict  # label -> resolved address (text or data)

    @property
    def text_end(self) -> int:
        return TEXT_BASE + len(self.instructions) * INSTRUCTION_BYTES

    def pc_of(self, index: int) -> int:
        return TEXT_BASE + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        return (pc - TEXT_BASE) // INSTRUCTION_BYTES
