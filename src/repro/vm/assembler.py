"""Two-pass assembler for the miniature machine.

Syntax (one statement per line; ``#`` comments)::

    .text                     # switch to the text segment (default)
    main:                     # labels end with ':'
        li   x1, 64
        la   x2, array        # load a data label's address
        call body             # pseudo: jal x15, body
        halt
    body:
        st   x1, 0(x2)
        ret                   # pseudo: jr x15

    .data
    array:
        .word64 1, 2, -3      # 64-bit little-endian words
        .space  256           # zero-filled bytes
        .byte   7, 8          # single bytes
        .align  8             # pad to a multiple of 8

Registers are written ``x0``-``x15`` (aliases: ``zero`` = x0, ``sp`` =
x14, ``ra`` = x15).  Immediates accept decimal and ``0x`` hex, with an
optional leading ``-``.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.vm.isa import (
    BRANCH_OPS,
    DATA_BASE,
    INSTRUCTION_BYTES,
    Instruction,
    Op,
    Program,
    REGISTER_COUNT,
    TEXT_BASE,
)


class AssemblyError(ReproError):
    """Raised for syntax or semantic errors, with the source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"assembly error at line {line}: {message}")
        self.line = line


_REGISTER_ALIASES = {"zero": 0, "sp": 14, "ra": 15}

#: Pseudo-instructions expanded during parsing.
_PSEUDO = {"call", "ret", "nop"}


def _parse_register(token: str, line: int) -> int:
    token = token.strip()
    if token in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[token]
    if token.startswith("x") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < REGISTER_COUNT:
            return number
    raise AssemblyError(f"bad register {token!r}", line)


def _parse_immediate(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate {token!r}", line) from None


def _parse_displacement(token: str, line: int) -> tuple[int, int]:
    """Parse ``imm(xN)`` into (imm, register)."""
    token = token.strip()
    if not token.endswith(")") or "(" not in token:
        raise AssemblyError(f"expected displacement imm(reg), got {token!r}", line)
    imm_text, register_text = token[:-1].split("(", 1)
    imm = _parse_immediate(imm_text or "0", line)
    return imm, _parse_register(register_text, line)


class _Statement:
    """One parsed instruction statement awaiting label resolution."""

    def __init__(self, op: Op, operands: list[str], line: int) -> None:
        self.op = op
        self.operands = operands
        self.line = line


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`~repro.vm.isa.Program`."""
    statements: list[_Statement] = []
    data = bytearray()
    labels: dict[str, int] = {}
    in_text = True

    # -- pass 1: parse, expand pseudos, record label positions -------------
    for line_number, raw_line in enumerate(source.split("\n"), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"bad label {label!r}", line_number)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number)
            if in_text:
                labels[label] = TEXT_BASE + len(statements) * INSTRUCTION_BYTES
            else:
                labels[label] = DATA_BASE + len(data)
            line = line.strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            argument = parts[1] if len(parts) > 1 else ""
            if directive == ".text":
                in_text = True
            elif directive == ".data":
                in_text = False
            elif directive == ".word64":
                if in_text:
                    raise AssemblyError(".word64 outside .data", line_number)
                for token in argument.split(","):
                    value = _parse_immediate(token, line_number)
                    data += (value & ((1 << 64) - 1)).to_bytes(8, "little")
            elif directive == ".byte":
                if in_text:
                    raise AssemblyError(".byte outside .data", line_number)
                for token in argument.split(","):
                    data.append(_parse_immediate(token, line_number) & 0xFF)
            elif directive == ".space":
                if in_text:
                    raise AssemblyError(".space outside .data", line_number)
                data += bytes(_parse_immediate(argument, line_number))
            elif directive == ".align":
                if in_text:
                    raise AssemblyError(".align outside .data", line_number)
                boundary = _parse_immediate(argument, line_number)
                while len(data) % boundary:
                    data.append(0)
            else:
                raise AssemblyError(f"unknown directive {directive!r}", line_number)
            continue

        if not in_text:
            raise AssemblyError("instruction inside .data", line_number)

        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [t.strip() for t in operand_text.split(",")] if operand_text else []

        if mnemonic in _PSEUDO:
            if mnemonic == "call":
                if len(operands) != 1:
                    raise AssemblyError("call takes one label", line_number)
                statements.append(_Statement(Op.JAL, ["ra", operands[0]], line_number))
            elif mnemonic == "ret":
                statements.append(_Statement(Op.JR, ["ra"], line_number))
            else:  # nop
                statements.append(_Statement(Op.ADDI, ["x0", "x0", "0"], line_number))
            continue

        try:
            op = Op(mnemonic)
        except ValueError:
            raise AssemblyError(f"unknown instruction {mnemonic!r}", line_number) from None
        statements.append(_Statement(op, operands, line_number))

    # -- pass 2: resolve operands and labels -------------------------------
    instructions: list[Instruction] = []
    for statement in statements:
        instructions.append(_encode(statement, labels))
    return Program(
        instructions=tuple(instructions), data=bytes(data), labels=labels
    )


def _expect(statement: _Statement, count: int) -> None:
    if len(statement.operands) != count:
        raise AssemblyError(
            f"{statement.op.value} takes {count} operands, "
            f"got {len(statement.operands)}",
            statement.line,
        )


def _label_address(token: str, labels: dict[str, int], line: int) -> int:
    token = token.strip()
    if token not in labels:
        raise AssemblyError(f"undefined label {token!r}", line)
    return labels[token]


def _encode(s: _Statement, labels: dict[str, int]) -> Instruction:
    op = s.op
    line = s.line
    if op is Op.HALT:
        _expect(s, 0)
        return Instruction(op, line=line)
    if op is Op.LI:
        _expect(s, 2)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line),
            imm=_parse_immediate(s.operands[1], line), line=line,
        )
    if op is Op.LA:
        _expect(s, 2)
        return Instruction(
            Op.LI, rd=_parse_register(s.operands[0], line),
            imm=_label_address(s.operands[1], labels, line), line=line,
        )
    if op is Op.MV:
        _expect(s, 2)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line),
            rs1=_parse_register(s.operands[1], line), line=line,
        )
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
              Op.SHL, Op.SHR):
        _expect(s, 3)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line),
            rs1=_parse_register(s.operands[1], line),
            rs2=_parse_register(s.operands[2], line), line=line,
        )
    if op in (Op.ADDI, Op.ANDI, Op.MULI, Op.SHLI, Op.SHRI):
        _expect(s, 3)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line),
            rs1=_parse_register(s.operands[1], line),
            imm=_parse_immediate(s.operands[2], line), line=line,
        )
    if op in (Op.LD, Op.LDB):
        _expect(s, 2)
        imm, base = _parse_displacement(s.operands[1], line)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line), rs1=base, imm=imm, line=line
        )
    if op in (Op.ST, Op.STB):
        _expect(s, 2)
        imm, base = _parse_displacement(s.operands[1], line)
        return Instruction(
            op, rs2=_parse_register(s.operands[0], line), rs1=base, imm=imm, line=line
        )
    if op in BRANCH_OPS:
        _expect(s, 3)
        return Instruction(
            op, rs1=_parse_register(s.operands[0], line),
            rs2=_parse_register(s.operands[1], line),
            target=_label_address(s.operands[2], labels, line), line=line,
        )
    if op is Op.J:
        _expect(s, 1)
        return Instruction(op, target=_label_address(s.operands[0], labels, line), line=line)
    if op is Op.JAL:
        _expect(s, 2)
        return Instruction(
            op, rd=_parse_register(s.operands[0], line),
            target=_label_address(s.operands[1], labels, line), line=line,
        )
    if op is Op.JR:
        _expect(s, 1)
        return Instruction(op, rs1=_parse_register(s.operands[0], line), line=line)
    raise AssemblyError(f"unhandled opcode {op.value!r}", line)
