"""Prediction tables and update policies.

Every predictor family stores its knowledge in lines of ``depth`` values,
most recent first.  A line is updated by shifting its entries right one slot
(discarding the oldest) and writing the new value into the first slot —
subject to the *update policy*:

- ``ALWAYS`` — VPC3's policy: update unconditionally.  Fast (no search) but
  lines fill up with duplicates of a repeating value.
- ``SMART`` — TCgen's enhancement (Section 5.3): update only when the new
  value differs from the line's first entry.  One comparison per update,
  and the first two entries of a line are guaranteed distinct, which
  improves prediction accuracy.
- ``SEARCH`` — VPC2's policy: update only when the value appears nowhere in
  the line.  Best retention of distinct values, but the whole line must be
  searched (slow); included for completeness, not used by the paper's
  benchmarks.

Tables are stored as flat Python lists (``lines * depth`` slots) so the
interpreted engine, the generated Python code, and the generated C code all
share one layout.
"""

from __future__ import annotations

from enum import Enum


class UpdatePolicy(str, Enum):
    ALWAYS = "always"
    SMART = "smart"
    SEARCH = "search"


class ValueTable:
    """A ``lines x depth`` table of masked integer values, flat layout."""

    __slots__ = ("lines", "depth", "mask", "slots")

    def __init__(self, lines: int, depth: int, mask: int) -> None:
        if lines < 1 or depth < 1:
            raise ValueError(f"table needs positive geometry, got {lines}x{depth}")
        self.lines = lines
        self.depth = depth
        self.mask = mask
        self.slots: list[int] = [0] * (lines * depth)

    def first(self, line: int) -> int:
        """Most recent value in ``line``."""
        return self.slots[line * self.depth]

    def read(self, line: int, count: int | None = None) -> list[int]:
        """The ``count`` most recent values in ``line`` (default: all)."""
        base = line * self.depth
        count = self.depth if count is None else count
        return self.slots[base : base + count]

    def insert(self, line: int, value: int) -> None:
        """Shift the line right one slot and write ``value`` first."""
        base = line * self.depth
        if self.depth > 1:
            self.slots[base + 1 : base + self.depth] = self.slots[
                base : base + self.depth - 1
            ]
        self.slots[base] = value & self.mask

    def update(self, line: int, value: int, policy: UpdatePolicy) -> bool:
        """Apply ``policy``; return whether the line changed."""
        value &= self.mask
        if policy is UpdatePolicy.SMART:
            if self.slots[line * self.depth] == value:
                return False
        elif policy is UpdatePolicy.SEARCH:
            base = line * self.depth
            if value in self.slots[base : base + self.depth]:
                return False
        self.insert(line, value)
        return True

    def memory_bytes(self, element_bytes: int) -> int:
        """Table footprint given the (possibly minimized) element width."""
        return self.lines * self.depth * element_bytes
