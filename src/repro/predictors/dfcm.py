"""The differential FCM predictor DFCMx[n] (paper Section 3, Figure 3).

Works like an FCM, but over *strides* (differences between consecutive
values): the hash context is built from recent strides, the second-level
table stores strides, and the final prediction adds the predicted stride to
the most recently seen value.  DFCMs warm up faster than FCMs, use the hash
table more efficiently, and can predict values never seen before.
"""

from __future__ import annotations

from repro.predictors.hashing import HashParams
from repro.predictors.tables import UpdatePolicy, ValueTable


class DFCMPredictor:
    """Self-contained DFCMx[n] predictor (with its own last-value state).

    Sizing matches TCgen: the stride hash table has ``l2_size * 2**(order-1)``
    lines.  In a full compressor the last-value state is shared with LV
    predictors of the same field; standalone, this class keeps its own.
    """

    def __init__(
        self,
        order: int,
        depth: int,
        l2_size: int,
        lines: int = 1,
        width_bits: int = 64,
        policy: UpdatePolicy = UpdatePolicy.SMART,
        adaptive_shift: bool = True,
        fast_hash: bool = True,
    ) -> None:
        self.order = order
        self.depth = depth
        self.lines = lines
        self.mask = (1 << width_bits) - 1
        self.policy = policy
        self.fast_hash = fast_hash
        self.params = HashParams.derive(
            width_bits, l2_size, order, adaptive_shift=adaptive_shift
        )
        self.l2 = ValueTable(self.params.order_lines(order), depth, self.mask)
        self.last = ValueTable(lines, 1, self.mask)
        if fast_hash:
            self._chains = [self.params.initial_chain() for _ in range(lines)]
        else:
            self._histories: list[list[int]] = [[] for _ in range(lines)]

    def _index(self, line: int) -> int:
        if self.fast_hash:
            return self._chains[line][self.order - 1]
        return self.params.scratch_hash(self._histories[line], self.order)

    def predict(self, pc: int = 0) -> list[int]:
        """Predicted strides added to the last value, masked to the width."""
        line = pc % self.lines
        last = self.last.first(line)
        strides = self.l2.read(self._index(line))
        return [(last + stride) & self.mask for stride in strides]

    def update(self, value: int, pc: int = 0) -> None:
        """Absorb the true value: stride tables first, then last value."""
        line = pc % self.lines
        value &= self.mask
        stride = (value - self.last.first(line)) & self.mask
        self.l2.update(self._index(line), stride, self.policy)
        if self.fast_hash:
            self.params.absorb(self._chains[line], stride)
        else:
            history = self._histories[line]
            history.insert(0, stride)
            del history[self.order :]
        self.last.update(line, value, UpdatePolicy.ALWAYS)
