"""Select-fold-shift-xor hashing for FCM/DFCM predictors.

An order-x (D)FCM predictor indexes its second-level table with a hash of
the x most recent values.  Following Sazeides and Smith, each value is
*folded* (XOR of fixed-width chunks) and the folds are combined with a
shift-and-xor chain.  Two TCgen properties are reproduced here exactly:

- **Sized index spaces**: the order-x table has ``L2 * 2**(x-1)`` lines, so
  the order-x hash is ``log2(L2) + x - 1`` bits wide.  With a shift of one
  bit per step, old contributions fall out of the masked window naturally.
- **Incremental computation**: the first-level table stores the partial
  hashes ``h[1..xmax]``; absorbing a new value costs one shift-xor-mask per
  order, and the intermediate results are exactly the indices of the
  lower-order predictors ("free" indices, Section 5.2).

TCgen's small-field enhancement is the *adaptive shift*: when a field is
narrower than the index space (say an 8-bit field feeding a 17-bit index),
a shift of 1 would leave most table lines unreachable, so the shift grows
to spread successive folds across the index width (Section 5.3).

:func:`scratch_hash` recomputes the same hash non-incrementally from a raw
value history; Table 2's "no fast hash function" ablation uses it, and a
property test asserts it always equals the incremental chain.
"""

from __future__ import annotations

from dataclasses import dataclass


def fold_value(value: int, width_bits: int, fold_bits: int) -> int:
    """XOR-fold a ``width_bits``-wide value into ``fold_bits`` bits.

    For fields no wider than the index space this is the identity (the
    "faster for small fields" enhancement: no folding work at all).
    """
    if width_bits <= fold_bits:
        return value
    mask = (1 << fold_bits) - 1
    result = 0
    while value:
        result ^= value & mask
        value >>= fold_bits
    return result


@dataclass(frozen=True)
class HashParams:
    """Derived hashing constants for one field's FCM or DFCM chain.

    ``index_bits[i]`` (1-based via :meth:`order_bits`) is the width of the
    order-(i+1) index; ``masks`` are the matching bit masks.
    """

    width_bits: int  # field width
    k1: int  # log2 of the base L2 size (order-1 index width)
    max_order: int
    fold_bits: int
    shift: int

    @classmethod
    def derive(
        cls,
        width_bits: int,
        l2_lines: int,
        max_order: int,
        adaptive_shift: bool = True,
    ) -> "HashParams":
        """Compute fold width and shift for a field/table combination.

        With ``adaptive_shift`` disabled the classic VPC3 behaviour is used:
        fold to the order-1 index width and shift by one bit per step.
        """
        k1 = l2_lines.bit_length() - 1
        if l2_lines != 1 << k1:
            raise ValueError(f"L2 size {l2_lines} is not a power of two")
        fold_bits = min(width_bits, k1) if k1 else 1
        shift = 1
        if adaptive_shift and fold_bits < k1 and max_order > 1:
            # Spread the max_order folds across the widest index space.
            top_bits = k1 + max_order - 1
            shift = max(1, min((top_bits - fold_bits) // (max_order - 1), fold_bits))
        return cls(
            width_bits=width_bits,
            k1=k1,
            max_order=max_order,
            fold_bits=fold_bits,
            shift=shift,
        )

    def order_bits(self, order: int) -> int:
        """Index width for an order-``order`` predictor."""
        return self.k1 + order - 1

    def order_mask(self, order: int) -> int:
        return (1 << self.order_bits(order)) - 1

    def order_lines(self, order: int) -> int:
        """Second-level table lines for an order-``order`` predictor."""
        return 1 << self.order_bits(order)

    def fold(self, value: int) -> int:
        return fold_value(value, self.width_bits, self.fold_bits)

    # -- incremental chain ---------------------------------------------------

    def initial_chain(self) -> list[int]:
        """Fresh partial-hash state ``h[0..max_order-1]`` (h[i] = order i+1)."""
        return [0] * self.max_order

    def absorb(self, chain: list[int], value: int) -> None:
        """Absorb one value into the partial-hash chain, in place.

        Costs exactly one shift-xor-mask per order (the paper's "only n
        operations" property); ``chain[i]`` afterwards indexes the
        order-(i+1) table for the *next* prediction.
        """
        folded = self.fold(value)
        shift = self.shift
        for i in range(self.max_order - 1, 0, -1):
            chain[i] = ((chain[i - 1] << shift) ^ folded) & self.order_mask(i + 1)
        chain[0] = folded & self.order_mask(1)

    # -- non-incremental reference -------------------------------------------

    def scratch_hash(self, history: list[int], order: int) -> int:
        """Hash of the ``order`` most recent values, computed from scratch.

        ``history`` lists values most-recent-first.  Values beyond the
        recorded history are treated as zero (matching a zero-initialized
        incremental chain).  Equivalent to the incremental chain by
        construction — only slower, which is the point of Table 2's "no
        fast hash function" row.
        """
        result = 0
        for step in range(1, order + 1):
            position = order - step  # oldest first
            value = history[position] if position < len(history) else 0
            result = ((result << self.shift) ^ self.fold(value)) & self.order_mask(step)
        return result
