"""The finite-context-method predictor FCMx[n] (paper Section 3, Figure 2).

An order-x FCM hashes the x most recently seen values (the *context*) and
predicts the n values that followed the last n occurrences of that same
context.  FCMs memorize long arbitrary value sequences and predict them
accurately when they repeat.
"""

from __future__ import annotations

from repro.predictors.hashing import HashParams
from repro.predictors.tables import UpdatePolicy, ValueTable


class FCMPredictor:
    """Self-contained FCMx[n] predictor.

    ``l2_size`` is the *base* second-level size from the specification; the
    actual hash table has ``l2_size * 2**(order-1)`` lines, exactly as TCgen
    allocates it.  With ``fast_hash`` the first-level table stores partial
    hashes and updates incrementally; without it, raw value histories are
    kept and hashes are recomputed from scratch (Table 2's ablation) — the
    two produce identical predictions.
    """

    def __init__(
        self,
        order: int,
        depth: int,
        l2_size: int,
        lines: int = 1,
        width_bits: int = 64,
        policy: UpdatePolicy = UpdatePolicy.SMART,
        adaptive_shift: bool = True,
        fast_hash: bool = True,
    ) -> None:
        self.order = order
        self.depth = depth
        self.lines = lines
        self.mask = (1 << width_bits) - 1
        self.policy = policy
        self.fast_hash = fast_hash
        self.params = HashParams.derive(
            width_bits, l2_size, order, adaptive_shift=adaptive_shift
        )
        self.l2 = ValueTable(self.params.order_lines(order), depth, self.mask)
        if fast_hash:
            self._chains = [self.params.initial_chain() for _ in range(lines)]
        else:
            self._histories: list[list[int]] = [[] for _ in range(lines)]

    def _index(self, line: int) -> int:
        """Current second-level index for first-level ``line``."""
        if self.fast_hash:
            return self._chains[line][self.order - 1]
        return self.params.scratch_hash(self._histories[line], self.order)

    def predict(self, pc: int = 0) -> list[int]:
        """The ``depth`` predictions for the current record."""
        return self.l2.read(self._index(pc % self.lines))

    def update(self, value: int, pc: int = 0) -> None:
        """Absorb the true value: update the hash table, then the context."""
        line = pc % self.lines
        value &= self.mask
        self.l2.update(self._index(line), value, self.policy)
        if self.fast_hash:
            self.params.absorb(self._chains[line], value)
        else:
            history = self._histories[line]
            history.insert(0, value)
            del history[self.order :]
