"""Value predictors: the compression engines behind TCgen.

TCgen converts hard-to-compress traces into highly compressible streams by
predicting each field of each record with a bank of value predictors and
emitting only predictor identification codes (plus the rare unpredictable
values).  This package implements the three predictor families from the
paper's Section 3:

- :class:`LastValuePredictor` — LV[n], the n most recently seen values;
- :class:`FCMPredictor` — FCMx[n], finite context method of order x;
- :class:`DFCMPredictor` — DFCMx[n], the differential (stride) FCM.

plus the select-fold-shift-xor hashing (:mod:`repro.predictors.hashing`) and
the table/update-policy building blocks (:mod:`repro.predictors.tables`)
shared with the generated code.
"""

from repro.predictors.dfcm import DFCMPredictor
from repro.predictors.fcm import FCMPredictor
from repro.predictors.hashing import HashParams, fold_value
from repro.predictors.lastvalue import LastValuePredictor
from repro.predictors.tables import UpdatePolicy, ValueTable

__all__ = [
    "DFCMPredictor",
    "FCMPredictor",
    "HashParams",
    "LastValuePredictor",
    "UpdatePolicy",
    "ValueTable",
    "fold_value",
]
