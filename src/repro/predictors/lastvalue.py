"""The last-value predictor LV[n] (paper Section 3, Figure 1).

Predicts the *n* most recently seen values of the line selected by
``PC mod s``.  Accurate for repeating and alternating values and for
repeating sequences of up to *n* arbitrary values.
"""

from __future__ import annotations

from repro.predictors.tables import UpdatePolicy, ValueTable


class LastValuePredictor:
    """Self-contained LV[n] predictor with ``lines`` first-level lines.

    When no PC is available (for example when the field being predicted *is*
    the PC), ``lines`` must be 1 and the ``pc`` arguments default to 0.
    """

    def __init__(
        self,
        depth: int,
        lines: int = 1,
        width_bits: int = 64,
        policy: UpdatePolicy = UpdatePolicy.SMART,
    ) -> None:
        self.depth = depth
        self.lines = lines
        self.mask = (1 << width_bits) - 1
        self.policy = policy
        self.table = ValueTable(lines, depth, self.mask)

    def predict(self, pc: int = 0) -> list[int]:
        """The ``depth`` predictions for the current record."""
        return self.table.read(pc % self.lines)

    def update(self, value: int, pc: int = 0) -> None:
        """Absorb the true value after (de)compression of the record."""
        self.table.update(pc % self.lines, value, self.policy)
