"""The predicate language for querying compressed traces.

TCgen specifications name fields positionally, not symbolically, so the
predicate language does too: ``f1``, ``f2``, ... refer to the 1-based
fields of the specification being queried, ``pc`` is an alias for the
spec's PC field, and ``record`` is the 0-based absolute record index
(which makes record ranges ordinary predicates: ``record >= 1000 and
record < 2000``).  Literals are decimal or ``0x`` hex integers.

Grammar (precedence low to high)::

    expr   := term ("or" term)*
    term   := factor ("and" factor)*
    factor := "(" expr ")" | field op literal
    op     := == | != | < | <= | > | >=

Every AST node answers three questions:

- :meth:`matches` — does this concrete record match?  (the filter)
- :meth:`mask` — which records of a decoded chunk match, evaluated as a
  NumPy boolean mask over per-field columns?  (the vectorized filter;
  record-for-record equivalent to :meth:`matches`)
- :meth:`maybe` — *could* any record in a chunk match, given the chunk's
  skip-index summary?  (the pruner)

``maybe`` is deliberately one-sided: it may answer True for a chunk with
no matches (the chunk is then decoded and filtered normally) but must
never answer False for a chunk that contains a match.  With no summary
available it answers True, which is what makes the planner correct on
archives without an index.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import PredicateError
from repro.tio.skipindex import ChunkSummary, bloom_maybe

#: The pseudo-field number for the absolute record index.
RECORD_FIELD = 0

_OPS = ("==", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class Comparison:
    """``field op literal`` — the leaf of every predicate."""

    field: int  # 1-based spec field, or RECORD_FIELD for the record index
    op: str
    value: int

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PredicateError(f"unknown operator {self.op!r}")
        if self.field < 0:
            raise PredicateError(f"field number must be >= 1, got {self.field}")

    def matches(self, record: tuple, index: int) -> bool:
        actual = index if self.field == RECORD_FIELD else record[self.field - 1]
        value = self.value
        if self.op == "==":
            return actual == value
        if self.op == "!=":
            return actual != value
        if self.op == "<":
            return actual < value
        if self.op == "<=":
            return actual <= value
        if self.op == ">":
            return actual > value
        return actual >= value

    def mask(self, columns: list, start: int, count: int) -> "np.ndarray":
        """Boolean match mask over a chunk's per-field columns.

        ``columns[i]`` is the unsigned column of 1-based field ``i + 1``;
        the record pseudo-field compares against ``start + position``.
        Equivalent to calling :meth:`matches` on every record.
        """
        if self.field == RECORD_FIELD:
            actual = np.arange(start, start + count, dtype=np.int64)
        else:
            actual = columns[self.field - 1]
        value = self.value
        # A literal beyond the column's dtype can't be lifted into the
        # array comparison; resolve it by sign of the comparison instead
        # (column values always fit their dtype, so the answer is uniform).
        if value > int(np.iinfo(actual.dtype).max):
            uniform = self.op in ("!=", "<", "<=")
            return np.full(count, uniform, dtype=bool)
        if self.op == "==":
            return actual == value
        if self.op == "!=":
            return actual != value
        if self.op == "<":
            return actual < value
        if self.op == "<=":
            return actual <= value
        if self.op == ">":
            return actual > value
        return actual >= value

    def maybe(self, start: int, count: int, summary: "ChunkSummary | None") -> bool:
        """Could any record in [start, start+count) match?"""
        bloom = None
        if self.field == RECORD_FIELD:
            lo, hi = start, start + count - 1
        elif summary is None or summary.fields is None:
            return True
        else:
            fs = summary.fields[self.field - 1]
            lo, hi = fs.lo, fs.hi
            bloom = fs.bloom
        value = self.value
        if self.op == "==":
            if not lo <= value <= hi:
                return False
            if bloom is not None:
                return bloom_maybe(bloom, len(bloom) * 8, value)
            return True
        if self.op == "!=":
            # Only an all-constant chunk equal to the literal is pruned.
            return not (lo == hi == value)
        if self.op == "<":
            return lo < value
        if self.op == "<=":
            return lo <= value
        if self.op == ">":
            return hi > value
        return hi >= value

    def __str__(self) -> str:
        name = "record" if self.field == RECORD_FIELD else f"f{self.field}"
        return f"{name} {self.op} {self.value}"


@dataclass(frozen=True)
class And:
    parts: tuple

    def matches(self, record: tuple, index: int) -> bool:
        return all(p.matches(record, index) for p in self.parts)

    def mask(self, columns: list, start: int, count: int) -> "np.ndarray":
        out = self.parts[0].mask(columns, start, count)
        for part in self.parts[1:]:
            out = out & part.mask(columns, start, count)
        return out

    def maybe(self, start: int, count: int, summary: "ChunkSummary | None") -> bool:
        return all(p.maybe(start, count, summary) for p in self.parts)

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    parts: tuple

    def matches(self, record: tuple, index: int) -> bool:
        return any(p.matches(record, index) for p in self.parts)

    def mask(self, columns: list, start: int, count: int) -> "np.ndarray":
        out = self.parts[0].mask(columns, start, count)
        for part in self.parts[1:]:
            out = out | part.mask(columns, start, count)
        return out

    def maybe(self, start: int, count: int, summary: "ChunkSummary | None") -> bool:
        return any(p.maybe(start, count, summary) for p in self.parts)

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.parts) + ")"


Predicate = Comparison  # documentation alias: any AST node quacks the same


def fields_used(pred) -> set[int]:
    """Every spec field number the predicate touches (RECORD_FIELD excluded)."""
    if isinstance(pred, Comparison):
        return set() if pred.field == RECORD_FIELD else {pred.field}
    used: set[int] = set()
    for part in pred.parts:
        used |= fields_used(part)
    return used


def validate_predicate(pred, field_count: int) -> None:
    """Raise :class:`PredicateError` if ``pred`` names a missing field."""
    for field in fields_used(pred):
        if field > field_count:
            raise PredicateError(
                f"predicate references f{field}, but the specification has "
                f"only {field_count} fields"
            )


_TOKEN = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>==|!=|<=|>=|<|>)|(?P<lparen>\()|(?P<rparen>\)))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.lastgroup is None:
            raise PredicateError(
                f"predicate syntax error at column {pos + 1}: {text[pos:pos + 20]!r}"
            )
        if match.end() == pos:  # only whitespace remained
            break
        tokens.append((match.lastgroup, match.group(match.lastgroup)))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], pc_field: int | None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.pc_field = pc_field

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PredicateError("predicate ended unexpectedly")
        self.pos += 1
        return token

    def expr(self):
        parts = [self.term()]
        while (t := self.peek()) and t == ("name", "or"):
            self.take()
            parts.append(self.term())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def term(self):
        parts = [self.factor()]
        while (t := self.peek()) and t == ("name", "and"):
            self.take()
            parts.append(self.factor())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def factor(self):
        kind, text = self.take()
        if kind == "lparen":
            inner = self.expr()
            kind, text = self.take()
            if kind != "rparen":
                raise PredicateError(f"expected ')', got {text!r}")
            return inner
        if kind != "name":
            raise PredicateError(f"expected a field name, got {text!r}")
        field = self._field(text)
        kind, op = self.take()
        if kind != "op":
            raise PredicateError(f"expected a comparison operator, got {op!r}")
        kind, literal = self.take()
        if kind != "num":
            raise PredicateError(f"expected an integer literal, got {literal!r}")
        return Comparison(field, op, int(literal, 0))

    def _field(self, name: str) -> int:
        lowered = name.lower()
        if lowered in ("record", "index"):
            return RECORD_FIELD
        if lowered == "pc":
            if self.pc_field is None:
                raise PredicateError(
                    "this specification has no PC field; name the field "
                    "explicitly (f1, f2, ...)"
                )
            return self.pc_field
        match = re.fullmatch(r"f(?:ield)?(\d+)", lowered)
        if match:
            field = int(match.group(1))
            if field < 1:
                raise PredicateError("field numbers are 1-based: f1, f2, ...")
            return field
        raise PredicateError(
            f"unknown field {name!r} (use f1, f2, ..., pc, or record)"
        )


def parse_predicate(text: str, *, pc_field: int | None = None):
    """Parse predicate text into an AST; raises :class:`PredicateError`.

    ``pc_field`` supplies the 1-based field number the ``pc`` alias
    resolves to (pass the spec's PC field; ``None`` disables the alias).
    """
    tokens = _tokenize(text)
    if not tokens:
        raise PredicateError("empty predicate")
    parser = _Parser(tokens, pc_field)
    tree = parser.expr()
    if parser.peek() is not None:
        raise PredicateError(
            f"unexpected trailing tokens: {' '.join(t for _, t in parser.tokens[parser.pos:])!r}"
        )
    return tree
