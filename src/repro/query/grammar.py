"""Grammar-aware analytics over SEQUITUR-compressed traces.

"Data Race Detection on Compressed Traces" (PAPERS.md) shows analyses
can run directly on a SEQUITUR grammar: a rule that the grammar uses
``k`` times and that expands to ``n`` terminals summarizes ``k * n``
trace entries in one object.  This module applies the idea to the
``SQT1`` baseline format (:mod:`repro.baselines.sequitur`) — hot-loop
and pattern statistics computed *on the rules themselves*, without ever
expanding the grammar:

- :func:`rule_metrics` — expansion length and occurrence count of every
  rule via two DAG traversals (grammars are acyclic by construction),
- :func:`count_value` — exact occurrence count of a value in the
  original trace, in time proportional to the grammar size,
- :func:`top_patterns` — the top-k repeated subsequences (rules) ranked
  by the trace coverage ``occurrences * length``.

For a trace with heavy loop structure the grammar is orders of magnitude
smaller than its expansion, so these run in milliseconds on traces whose
expansion would not fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import post_decompress
from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader

_TAG = b"SQT1"

#: Terminals shown when previewing a pattern's expansion.
PREVIEW_TERMINALS = 8


@dataclass
class SequenceGrammars:
    """One compressed sequence: a value table shared by grammar segments."""

    table: list[int]
    #: Per segment: list of rule bodies; body codes are
    #: ``value_id * 2`` (terminal) or ``rule_number * 2 + 1`` (reference).
    segments: list[list[list[int]]]

    @property
    def rule_count(self) -> int:
        return sum(len(bodies) for bodies in self.segments)

    @property
    def symbol_count(self) -> int:
        return sum(len(body) for bodies in self.segments for body in bodies)


@dataclass
class GrammarInfo:
    """A parsed (never expanded) SQT1 blob."""

    header: bytes
    record_count: int
    pc: SequenceGrammars
    data: SequenceGrammars

    def sequence(self, name: str) -> SequenceGrammars:
        if name == "pc":
            return self.pc
        if name == "data":
            return self.data
        raise ValueError(f"sequence must be 'pc' or 'data', got {name!r}")


@dataclass
class Pattern:
    """One repeated subsequence (a grammar rule) and its statistics."""

    segment: int
    rule: int
    length: int  # terminals in the full expansion
    occurrences: int  # times the rule body occurs in the expanded trace
    #: First PREVIEW_TERMINALS values of the expansion (actual trace values).
    preview: list[int]

    @property
    def coverage(self) -> int:
        """Trace entries this pattern accounts for in total."""
        return self.length * self.occurrences


def _read_sequence(reader: ByteReader) -> SequenceGrammars:
    table_size = reader.read_count("SEQUITUR value table", item_bytes=8)
    table = [reader.read_u64() for _ in range(table_size)]
    segment_count = reader.read_count("SEQUITUR segments")
    segments = []
    for _ in range(segment_count):
        rule_count = reader.read_count("SEQUITUR rules")
        bodies = []
        for _ in range(rule_count):
            length = reader.read_count("SEQUITUR rule body")
            bodies.append([reader.read_varint() for _ in range(length)])
        segments.append(bodies)
    return SequenceGrammars(table=table, segments=segments)


def load_grammar(blob: bytes) -> GrammarInfo:
    """Parse an SQT1 blob into its grammars without expanding them."""
    reader = ByteReader(post_decompress(_TAG, blob))
    header = reader.read_bytes(4)
    record_count = reader.read_varint()
    pc = _read_sequence(reader)
    data = _read_sequence(reader)
    if not reader.at_end():
        raise CompressedFormatError(
            f"{reader.remaining()} trailing bytes after SEQUITUR grammars"
        )
    return GrammarInfo(header=header, record_count=record_count, pc=pc, data=data)


def _topo_order(bodies: list[list[int]]) -> list[int]:
    """Rule numbers ordered so every rule precedes the rules it references.

    Iterative DFS postorder (reversed) from rule 0; SEQUITUR grammars are
    acyclic, but a hostile blob might not be — cycles raise instead of
    hanging.  Unreachable rules are appended so every rule gets metrics.
    """
    count = len(bodies)
    state = [0] * count  # 0 = unseen, 1 = on stack, 2 = done
    post: list[int] = []
    for root in range(count):
        if state[root]:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        state[root] = 1
        while stack:
            rule, cursor = stack.pop()
            advanced = False
            body = bodies[rule]
            while cursor < len(body):
                code = body[cursor]
                cursor += 1
                if code & 1:
                    child = code >> 1
                    if child >= count:
                        raise CompressedFormatError(
                            f"SEQUITUR: rule {child} out of range"
                        )
                    if state[child] == 1:
                        raise CompressedFormatError("SEQUITUR: cyclic grammar")
                    if state[child] == 0:
                        state[child] = 1
                        stack.append((rule, cursor))
                        stack.append((child, 0))
                        advanced = True
                        break
            if not advanced:
                state[rule] = 2
                post.append(rule)
    post.reverse()  # parents before children
    return post


def rule_metrics(bodies: list[list[int]]) -> tuple[list[int], list[int]]:
    """(expansion length, occurrence count) per rule, without expansion.

    Lengths flow bottom-up (children before parents), occurrences flow
    top-down from the start rule (rule 0 occurs once); both are single
    passes over one topological order.
    """
    order = _topo_order(bodies)
    count = len(bodies)
    lengths = [0] * count
    for rule in reversed(order):  # children before parents
        total = 0
        for code in bodies[rule]:
            total += lengths[code >> 1] if code & 1 else 1
        lengths[rule] = total
    occurrences = [0] * count
    if count:
        occurrences[0] = 1
    for rule in order:  # parents before children
        occ = occurrences[rule]
        if not occ:
            continue
        for code in bodies[rule]:
            if code & 1:
                occurrences[code >> 1] += occ
    return lengths, occurrences


def count_value(seq: SequenceGrammars, value: int) -> int:
    """Exact number of times ``value`` occurs in the expanded sequence."""
    try:
        value_id = seq.table.index(value)
    except ValueError:
        return 0
    terminal = value_id * 2
    total = 0
    for bodies in seq.segments:
        if not bodies:
            continue
        order = _topo_order(bodies)
        counts = [0] * len(bodies)
        for rule in reversed(order):  # children before parents
            subtotal = 0
            for code in bodies[rule]:
                if code == terminal:
                    subtotal += 1
                elif code & 1:
                    subtotal += counts[code >> 1]
            counts[rule] = subtotal
        total += counts[0]
    return total


def _expand_prefix(
    bodies: list[list[int]], rule: int, table: list[int], limit: int
) -> list[int]:
    """First ``limit`` terminals of a rule's expansion (bounded work)."""
    out: list[int] = []
    stack: list[tuple[int, int]] = [(rule, 0)]
    while stack and len(out) < limit:
        current, cursor = stack.pop()
        body = bodies[current]
        while cursor < len(body) and len(out) < limit:
            code = body[cursor]
            cursor += 1
            if code & 1:
                stack.append((current, cursor))
                current, cursor, body = code >> 1, 0, bodies[code >> 1]
                continue
            value_id = code >> 1
            if value_id >= len(table):
                raise CompressedFormatError("SEQUITUR: value id out of range")
            out.append(table[value_id])
    return out


def top_patterns(
    seq: SequenceGrammars, k: int = 10, min_length: int = 2
) -> list[Pattern]:
    """The top-``k`` repeated subsequences by trace coverage.

    Rule 0 (the whole trace) is excluded; so are rules shorter than
    ``min_length`` terminals or used only once — a pattern must repeat.
    """
    patterns: list[Pattern] = []
    for segment_number, bodies in enumerate(seq.segments):
        if len(bodies) < 2:
            continue
        lengths, occurrences = rule_metrics(bodies)
        for rule in range(1, len(bodies)):
            if lengths[rule] < min_length or occurrences[rule] < 2:
                continue
            patterns.append(
                Pattern(
                    segment=segment_number,
                    rule=rule,
                    length=lengths[rule],
                    occurrences=occurrences[rule],
                    preview=_expand_prefix(bodies, rule, seq.table, PREVIEW_TERMINALS),
                )
            )
    patterns.sort(key=lambda p: (-p.coverage, p.segment, p.rule))
    return patterns[:k]


def analyze(blob: bytes, *, sequence: str = "pc", top: int = 10) -> str:
    """Render a hot-pattern report for one sequence of an SQT1 blob."""
    info = load_grammar(blob)
    seq = info.sequence(sequence)
    lines = [
        f"SEQUITUR grammar report ({sequence} sequence)",
        f"records:        {info.record_count}",
        f"distinct values:{len(seq.table):>8}",
        f"segments:       {len(seq.segments)}",
        f"rules:          {seq.rule_count} ({seq.symbol_count} symbols)",
    ]
    patterns = top_patterns(seq, k=top)
    if not patterns:
        lines.append("no repeated patterns of length >= 2")
    for rank, p in enumerate(patterns, start=1):
        preview = " ".join(f"{v:#x}" for v in p.preview)
        ellipsis = " ..." if p.length > len(p.preview) else ""
        lines.append(
            f"#{rank:<2} rule {p.segment}/{p.rule}: len {p.length} x {p.occurrences} "
            f"occurrences = {p.coverage} entries  [{preview}{ellipsis}]"
        )
    return "\n".join(lines)
