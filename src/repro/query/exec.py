"""Predicate-pushdown query execution over compressed containers.

:func:`run_query` is the engine behind :meth:`TraceEngine.query
<repro.runtime.engine.TraceEngine.query>`.  The plan is simple and
always the same shape:

1. parse/validate the predicate,
2. decode the container *metadata* (strict or salvage),
3. for each chunk, ask the skip index whether the predicate could match
   anything inside it — if provably not, the chunk's streams are never
   post-decompressed or kernel-decoded,
4. decode the surviving chunks lazily and filter them — as one NumPy
   boolean mask over the chunk's columns when an accelerated kernel
   (native or numpy) decoded it, record by record otherwise.  The two
   filters are record-for-record equivalent by construction.

The skip index is only ever an accelerator.  It is ignored wholesale
when its shape does not match the container (wrong field count or chunk
count — a stale index from some other archive), and per chunk when the
summary's record count disagrees with the chunk's.  Damaged chunks in
salvage mode are reported, not fatal, with the same surviving-sequence
record numbering as ``iter_records``/salvage decompress.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import CompressedFormatError
from repro.query.predicate import parse_predicate, validate_predicate
from repro.runtime.parallel import check_cancel
from repro.runtime.streaming import _chunk_raw, _iter_chunk
from repro.tio.container import (
    DEFAULT_MAX_CHUNK_BYTES,
    DecodeReport,
    StreamContainer,
    as_chunked,
    decode_container,
)

_STRUCT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}

QUERY_OPS = ("select", "count", "stats")


@dataclass
class QueryStats:
    """What the planner did — the proof that pushdown pushed down."""

    total_chunks: int = 0
    decoded_chunks: int = 0
    skipped_chunks: int = 0
    #: Chunks whose skip-index summary was consulted (usable and trusted).
    indexed_chunks: int = 0
    index_present: bool = False
    records_scanned: int = 0

    def as_dict(self) -> dict:
        return {
            "total_chunks": self.total_chunks,
            "decoded_chunks": self.decoded_chunks,
            "skipped_chunks": self.skipped_chunks,
            "indexed_chunks": self.indexed_chunks,
            "index_present": self.index_present,
            "records_scanned": self.records_scanned,
        }


@dataclass
class QueryResult:
    """The answer plus the evidence of how it was computed."""

    op: str
    count: int = 0
    #: Matching records (``select`` only), as field-value tuples.
    records: list = dataclass_field(default_factory=list)
    #: Per-field {"min", "max", "count"} over the matches (``stats`` only).
    field_stats: "list[dict] | None" = None
    stats: QueryStats = dataclass_field(default_factory=QueryStats)
    report: DecodeReport = dataclass_field(default_factory=DecodeReport)

    def render(self) -> str:
        """Human-readable planner/result summary (CLI ``--verbose`` output)."""
        s = self.stats
        lines = [
            f"matched:  {self.count} records "
            f"(scanned {s.records_scanned})",
            f"chunks:   {s.decoded_chunks} decoded, {s.skipped_chunks} "
            f"skipped of {s.total_chunks}",
            "index:    "
            + (
                f"used for {s.indexed_chunks}/{s.total_chunks} chunks"
                if s.index_present
                else "absent (full scan)"
            ),
        ]
        if self.report.lost_chunks:
            lines.append(
                f"damage:   {len(self.report.lost_chunks)} chunks lost "
                f"({self.report.lost_records} records)"
            )
        if self.field_stats is not None:
            for number, fs in enumerate(self.field_stats, start=1):
                if fs["count"]:
                    lines.append(
                        f"f{number}:       min {fs['min']:#x}  max {fs['max']:#x}"
                    )
                else:
                    lines.append(f"f{number}:       no matches")
        return "\n".join(lines)


def run_query(
    engine,
    blob: bytes,
    where=None,
    *,
    op: str = "select",
    limit: int | None = None,
    mode: str = "strict",
    max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
    cancel=None,
) -> QueryResult:
    """Execute a query against a container blob; see :class:`QueryResult`.

    ``where`` may be predicate text, an already-parsed AST, or ``None``
    (match everything).  ``limit`` stops a ``select`` after that many
    matches (later chunks are then never decoded); it is ignored for
    ``count``/``stats``, which must see every match.
    """
    if op not in QUERY_OPS:
        raise ValueError(f"op must be one of {QUERY_OPS}, got {op!r}")
    if limit is not None and (not isinstance(limit, int) or limit < 1):
        raise ValueError(f"limit must be a positive int or None, got {limit!r}")
    if mode not in ("strict", "salvage"):
        raise ValueError(f"mode must be 'strict' or 'salvage', got {mode!r}")
    model = engine.model
    predicate = None
    if where is not None:
        predicate = (
            parse_predicate(where, pc_field=engine.format.pc_field or None)
            if isinstance(where, str)
            else where
        )
        validate_predicate(predicate, len(model.fields))

    salvage = mode == "salvage"
    report = DecodeReport()
    engine.last_report = report
    result = QueryResult(op=op, report=report)
    stats = result.stats
    container = decode_container(
        blob,
        expected_fingerprint=model.fingerprint(),
        mode=mode,
        max_chunk_bytes=max_chunk_bytes,
        report=report,
    )
    header_streams = 1 if model.spec.header_bits else 0
    per_chunk = 2 * len(model.fields)
    if isinstance(container, StreamContainer):
        if len(container.streams) != model.stream_count:
            if salvage:
                if report.recovered_chunks:
                    report.demote(
                        report.recovered_chunks[0],
                        container.record_count,
                        "container stream layout unusable",
                    )
                return _finish(result)
            raise CompressedFormatError(
                f"expected {model.stream_count} streams, found {len(container.streams)}"
            )
        chunked = as_chunked(container, header_streams)
    else:
        chunked = container
        if len(chunked.global_streams) != header_streams and not salvage:
            raise CompressedFormatError(
                f"expected {header_streams} global streams, "
                f"found {len(chunked.global_streams)}"
            )

    # Trust the index only when its shape matches this container exactly;
    # a stale or foreign index silently degrades to a full scan.
    index = chunked.skip_index
    stats.index_present = index is not None
    usable_index = (
        index is not None
        and index.field_count == len(model.fields)
        and len(index.chunks) == report.total_chunks
    )

    kernel = None
    if not salvage:
        kernel = engine._backend().kernel

    # Salvage containers hold only the surviving chunks;
    # report.recovered_chunks maps them back to original indices (which is
    # where the skip index is addressed), while record numbering follows
    # the surviving sequence exactly like iter_records.
    indices = list(report.recovered_chunks) if salvage else range(len(chunked.chunks))
    stats.total_chunks = len(chunked.chunks)
    record_dtype = np.dtype(
        [(f"f{i + 1}", f"<u{layout.spec.bytes}") for i, layout in enumerate(model.fields)]
    )
    absolute = 0
    for position, chunk in zip(indices, chunked.chunks):
        check_cancel(cancel)
        if op == "select" and limit is not None and result.count >= limit:
            break
        summary = None
        if usable_index and position < len(index.chunks):
            candidate = index.chunks[position]
            if candidate.summarized and candidate.record_count == chunk.record_count:
                summary = candidate
                stats.indexed_chunks += 1
        if predicate is not None and not predicate.maybe(
            absolute, chunk.record_count, summary
        ):
            stats.skipped_chunks += 1
            absolute += chunk.record_count
            continue
        if kernel is not None:
            # Accelerated path: the kernel hands back raw record bytes,
            # so the filter runs as one boolean mask over the columns
            # instead of a Python call per record.
            raw = _chunk_raw(kernel, chunk, position, per_chunk)
            stats.decoded_chunks += 1
            n = chunk.record_count
            body = np.frombuffer(raw, dtype=record_dtype)
            columns = [body[f"f{i + 1}"] for i in range(len(model.fields))]
            mask = None
            if predicate is not None:
                mask = predicate.mask(columns, absolute, n)
            matched = n if mask is None else int(np.count_nonzero(mask))
            take = matched
            scanned = n
            if op == "select" and limit is not None and result.count + matched >= limit:
                # Mirror the scalar loop, which stops at the limit-th
                # match: records past it are never counted as scanned.
                take = limit - result.count
                last = take - 1 if mask is None else int(np.flatnonzero(mask)[take - 1])
                scanned = last + 1
            if op == "select" and take:
                picked = body[:take] if mask is None else body[np.flatnonzero(mask)[:take]]
                result.records.extend(picked.tolist())
            result.count += take
            if op == "stats" and matched:
                _fold_stats_columns(result, columns, mask, len(model.fields))
            stats.records_scanned += scanned
            absolute += n
            continue
        if salvage:
            try:
                decoded = list(_iter_chunk(model, chunk, position, per_chunk))
            except Exception as exc:
                report.demote(position, chunk.record_count, f"chunk decode failed: {exc}")
                continue
        else:
            decoded = _iter_chunk(model, chunk, position, per_chunk)
        stats.decoded_chunks += 1
        for record in decoded:
            stats.records_scanned += 1
            if predicate is None or predicate.matches(record, absolute):
                result.count += 1
                if op == "select":
                    result.records.append(record)
                    if limit is not None and result.count >= limit:
                        break
                elif op == "stats":
                    _fold_stats(result, record, len(model.fields))
            absolute += 1
    return _finish(result)


def _fold_stats(result: QueryResult, record: tuple, field_count: int) -> None:
    if result.field_stats is None:
        result.field_stats = [
            {"min": None, "max": None, "count": 0} for _ in range(field_count)
        ]
    for fs, value in zip(result.field_stats, record):
        fs["count"] += 1
        if fs["min"] is None or value < fs["min"]:
            fs["min"] = value
        if fs["max"] is None or value > fs["max"]:
            fs["max"] = value


def _fold_stats_columns(result: QueryResult, columns, mask, field_count: int) -> None:
    """Vectorized :func:`_fold_stats` over a whole chunk's matches."""
    if result.field_stats is None:
        result.field_stats = [
            {"min": None, "max": None, "count": 0} for _ in range(field_count)
        ]
    for fs, column in zip(result.field_stats, columns):
        values = column if mask is None else column[mask]
        fs["count"] += int(values.size)
        lo, hi = int(values.min()), int(values.max())
        if fs["min"] is None or lo < fs["min"]:
            fs["min"] = lo
        if fs["max"] is None or hi > fs["max"]:
            fs["max"] = hi


def _finish(result: QueryResult) -> QueryResult:
    if result.op == "stats" and result.field_stats is None:
        result.field_stats = []
    return result


def records_to_bytes(fmt, records) -> bytes:
    """Pack query-result tuples back into raw little-endian record bytes.

    The inverse of the record framing (header excluded): useful for
    piping ``select`` results into any tool that reads raw traces.
    """
    code = "<" + "".join(_STRUCT_CODES[width // 8] for width in fmt.field_bits)
    packer = struct.Struct(code)
    return b"".join(packer.pack(*record) for record in records)


def rebuild_index(engine, blob: bytes, *, bloom_bits: int | None = None) -> bytes:
    """Re-encode ``blob`` with a freshly computed skip index.

    Works on intact v3 containers and *closed* v4 streams: both re-encode
    byte-identically from their parsed form, so the only change in the
    output is the (new or replaced) ``TCIX`` frame.  Raises typed errors
    for v1/v2 blobs (no place for an index), damaged archives (recover
    first, then index), and open v4 streams (close or recover first).
    """
    from repro.tio.container import FORMAT_VERSION_4, container_version
    from repro.tio.skipindex import DEFAULT_BLOOM_BITS, build_index
    from repro.tio.traceformat import unpack_records

    version = container_version(blob)
    if version in (1, 2):
        raise CompressedFormatError(
            f"v{version} containers cannot carry a skip index; recompress "
            f"with container_version=3 or 4 first"
        )
    report = DecodeReport()
    container = decode_container(
        blob, expected_fingerprint=engine.model.fingerprint(), report=report
    )
    if version == FORMAT_VERSION_4 and report.truncated:
        raise CompressedFormatError(
            "stream is open (no close trailer); close or resume it before indexing"
        )
    raw = engine.decompress(blob)
    _, columns = unpack_records(engine.format, raw, copy=False)
    spans = []
    start = 0
    for chunk in container.chunks:
        spans.append((start, chunk.record_count))
        start += chunk.record_count
    from repro.tio.skipindex import SkipIndex, summarize_columns

    bits = DEFAULT_BLOOM_BITS if bloom_bits is None else bloom_bits
    container.skip_index = SkipIndex(
        field_count=len(engine.format.field_bits),
        bloom_bits=bits,
        chunks=[
            summarize_columns([col[s : s + c] for col in columns], bits)
            for s, c in spans
        ],
    )
    return container.encode()
