"""Querying compressed trace archives without full decompression.

The write path (seven PRs of container, engine, and serving work) made
trace archives cheap to produce; this package is the read path that
makes them cheap to *ask questions of*.  Three layers:

- :mod:`repro.query.predicate` — a small typed predicate language
  (``f1 == 0x400``, ``pc >= 0x1000 and record < 50000``) whose AST
  answers both "does this record match?" and "could anything in this
  chunk match, given its summary?",
- :mod:`repro.query.exec` — the pushdown executor: consults the chunk
  skip index (:mod:`repro.tio.skipindex`) to decode only chunks that
  could contain matches, falling back to a full scan when the index is
  absent, stale, or partial — results are identical either way,
- :mod:`repro.query.grammar` — analytics computed directly on SEQUITUR
  grammars (hot loops, pattern counts) without expanding them.

Entry points: :meth:`TraceEngine.query
<repro.runtime.engine.TraceEngine.query>`, the ``tcgen-query`` CLI, the
``query`` server op, and the gateway's ``POST /v1/query`` route.
"""

from repro.query.exec import (
    QUERY_OPS,
    QueryResult,
    QueryStats,
    rebuild_index,
    records_to_bytes,
    run_query,
)
from repro.query.grammar import (
    GrammarInfo,
    Pattern,
    analyze,
    count_value,
    load_grammar,
    rule_metrics,
    top_patterns,
)
from repro.query.predicate import (
    RECORD_FIELD,
    And,
    Comparison,
    Or,
    parse_predicate,
    validate_predicate,
)

__all__ = [
    "And",
    "Comparison",
    "GrammarInfo",
    "Or",
    "Pattern",
    "QUERY_OPS",
    "QueryResult",
    "QueryStats",
    "RECORD_FIELD",
    "analyze",
    "count_value",
    "load_grammar",
    "parse_predicate",
    "rebuild_index",
    "records_to_bytes",
    "rule_metrics",
    "run_query",
    "top_patterns",
    "validate_predicate",
]
