"""Resolution of a specification into a concrete compressor layout.

This performs the paper's Section 5.2 work ahead of code generation:

- **renaming** — every prediction gets a dense identification code; codes
  for one field run ``0 .. total_predictions-1`` with ``total_predictions``
  reserved as the miss code;
- **table sizing** — an order-x (D)FCM gets ``L2 * 2**(x-1)`` second-level
  lines; first-level chains are sized for the field's highest order and
  shared by lower orders;
- **table sharing/coalescing** — one last-value table per field serves all
  LV and DFCM predictors; one FCM chain serves all FCM orders, one DFCM
  chain all DFCM orders (subject to the ``shared_tables`` option);
- **type minimization** — the smallest sufficient element widths for every
  table and output stream (subject to ``type_minimization``);
- **dead-code facts** — which structures a field does *not* need (no
  last-value table without LV/DFCM, no stride logic without DFCM, no
  header stream for a headerless format), which the generators use to omit
  code entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.model.optimize import OptimizationOptions
from repro.predictors.hashing import HashParams
from repro.spec.ast import FieldSpec, PredictorKind, PredictorSpec, TraceSpec
from repro.spec.validate import validate_spec


def storage_bytes(bits: int) -> int:
    """Smallest power-of-two byte width holding ``bits`` bits (max 8)."""
    for width in (1, 2, 4, 8):
        if bits <= 8 * width:
            return width
    raise ValidationError(f"{bits} bits exceed the 64-bit storage limit")


@dataclass(frozen=True)
class ResolvedPredictor:
    """One predictor with its dense code range and concrete table sizes."""

    spec: PredictorSpec
    first_code: int  # codes are first_code .. first_code + depth - 1
    l2_lines: int  # 0 for LV predictors

    @property
    def codes(self) -> range:
        return range(self.first_code, self.first_code + self.spec.depth)

    @property
    def name(self) -> str:
        return str(self.spec).replace("[", "_").replace("]", "")


@dataclass(frozen=True)
class FieldLayout:
    """Everything code generation needs to know about one field."""

    spec: FieldSpec
    is_pc: bool
    byte_offset: int  # offset of the field within a record
    predictors: tuple[ResolvedPredictor, ...]
    # Shared-structure facts (sizes are valid even when sharing is off;
    # unshared predictors replicate these structures privately).
    lv_depth: int  # 0 = no last-value table needed
    fcm_params: HashParams | None  # None = no FCM predictors
    dfcm_params: HashParams | None  # None = no DFCM predictors
    # Stream element widths (already account for type_minimization).
    code_bytes: int
    value_bytes: int
    # Table element widths (already account for type_minimization).
    elem_bytes: int  # value/stride table elements
    fcm_chain_bytes: int
    dfcm_chain_bytes: int

    @property
    def index(self) -> int:
        return self.spec.index

    @property
    def width_bits(self) -> int:
        return self.spec.bits

    @property
    def mask(self) -> int:
        return (1 << self.spec.bits) - 1

    @property
    def l1_lines(self) -> int:
        return self.spec.l1_size

    @property
    def total_predictions(self) -> int:
        return sum(p.spec.depth for p in self.predictors)

    @property
    def miss_code(self) -> int:
        return self.total_predictions

    @property
    def needs_stride(self) -> bool:
        """Dead-code fact: strides are computed only for DFCM fields."""
        return self.dfcm_params is not None

    @property
    def needs_last_value(self) -> bool:
        """Dead-code fact: the last-value table exists only for LV/DFCM."""
        return self.lv_depth > 0

    def table_bytes(self, shared: bool = True) -> int:
        """Total predictor-table footprint for this field, in bytes."""
        total = 0
        if shared:
            if self.lv_depth:
                total += self.l1_lines * self.lv_depth * self.elem_bytes
            if self.fcm_params is not None:
                total += self.l1_lines * self.fcm_params.max_order * self.fcm_chain_bytes
            if self.dfcm_params is not None:
                total += self.l1_lines * self.dfcm_params.max_order * self.dfcm_chain_bytes
            for pred in self.predictors:
                if pred.spec.has_second_level:
                    total += pred.l2_lines * pred.spec.depth * self.elem_bytes
            return total
        # Unshared: every predictor owns private copies of what it needs.
        for pred in self.predictors:
            kind = pred.spec.kind
            if kind is PredictorKind.LV:
                total += self.l1_lines * pred.spec.depth * self.elem_bytes
            elif kind is PredictorKind.FCM:
                total += self.l1_lines * pred.spec.order * self.fcm_chain_bytes
                total += pred.l2_lines * pred.spec.depth * self.elem_bytes
            else:  # DFCM: private chain, L2, and last-value slot
                total += self.l1_lines * pred.spec.order * self.dfcm_chain_bytes
                total += pred.l2_lines * pred.spec.depth * self.elem_bytes
                total += self.l1_lines * self.elem_bytes
        return total


@dataclass(frozen=True)
class CompressorModel:
    """A fully resolved compressor: fields, options, stream layout."""

    spec: TraceSpec
    options: OptimizationOptions
    fields: tuple[FieldLayout, ...]  # in record order

    @property
    def pc_field(self) -> FieldLayout:
        for field in self.fields:
            if field.is_pc:
                return field
        raise AssertionError("model without a PC field")

    @property
    def process_order(self) -> tuple[FieldLayout, ...]:
        """Fields in processing order: the PC field always comes first
        (its value indexes the other fields' tables)."""
        pc = self.pc_field
        rest = tuple(f for f in self.fields if not f.is_pc)
        return (pc,) + rest

    @property
    def stream_count(self) -> int:
        """Header stream (if any) plus a code and a value stream per field."""
        return (1 if self.spec.header_bits else 0) + 2 * len(self.fields)

    def stream_names(self) -> list[str]:
        names = ["header"] if self.spec.header_bits else []
        for field in self.fields:
            names.append(f"field{field.index}_codes")
            names.append(f"field{field.index}_values")
        return names

    def table_bytes(self) -> int:
        """Total predictor-table footprint (the paper's reported number)."""
        shared = self.options.shared_tables
        return sum(field.table_bytes(shared=shared) for field in self.fields)

    def total_predictions(self) -> int:
        """What the paper calls the number of "predictors"."""
        return sum(field.total_predictions for field in self.fields)

    def fingerprint(self) -> int:
        return self.spec.fingerprint()


def _resolve_field(
    field: FieldSpec, is_pc: bool, byte_offset: int, options: OptimizationOptions
) -> FieldLayout:
    lv_depths = [p.depth for p in field.predictors if p.kind is PredictorKind.LV]
    fcm_orders = [p.order for p in field.predictors if p.kind is PredictorKind.FCM]
    dfcm_orders = [p.order for p in field.predictors if p.kind is PredictorKind.DFCM]

    lv_depth = max(lv_depths, default=0)
    if dfcm_orders and lv_depth == 0:
        lv_depth = 1  # DFCM needs the most recent value for strides

    fcm_params = (
        HashParams.derive(
            field.bits, field.l2_size, max(fcm_orders), options.adaptive_shift
        )
        if fcm_orders
        else None
    )
    dfcm_params = (
        HashParams.derive(
            field.bits, field.l2_size, max(dfcm_orders), options.adaptive_shift
        )
        if dfcm_orders
        else None
    )

    predictors = []
    next_code = 0
    for pred in field.predictors:
        l2_lines = 0
        if pred.has_second_level:
            l2_lines = field.l2_size << (pred.order - 1)
        predictors.append(
            ResolvedPredictor(spec=pred, first_code=next_code, l2_lines=l2_lines)
        )
        next_code += pred.depth

    if options.type_minimization:
        elem_bytes = field.bytes
        value_bytes = field.bytes
        code_bytes = 1 if next_code + 1 <= 256 else 2
        fcm_chain_bytes = (
            storage_bytes(fcm_params.order_bits(fcm_params.max_order))
            if fcm_params
            else 0
        )
        dfcm_chain_bytes = (
            storage_bytes(dfcm_params.order_bits(dfcm_params.max_order))
            if dfcm_params
            else 0
        )
    else:
        # Native widths: values in long long, codes in int, like naive C.
        elem_bytes = 8
        value_bytes = 8
        code_bytes = 4
        fcm_chain_bytes = 8 if fcm_params else 0
        dfcm_chain_bytes = 8 if dfcm_params else 0

    return FieldLayout(
        spec=field,
        is_pc=is_pc,
        byte_offset=byte_offset,
        predictors=tuple(predictors),
        lv_depth=lv_depth,
        fcm_params=fcm_params,
        dfcm_params=dfcm_params,
        code_bytes=code_bytes,
        value_bytes=value_bytes,
        elem_bytes=elem_bytes,
        fcm_chain_bytes=fcm_chain_bytes,
        dfcm_chain_bytes=dfcm_chain_bytes,
    )


def build_model(
    spec: TraceSpec, options: OptimizationOptions | None = None
) -> CompressorModel:
    """Resolve a validated specification into a :class:`CompressorModel`."""
    validate_spec(spec)
    options = options or OptimizationOptions.full()
    fields = []
    offset = 0
    for field in spec.fields:
        fields.append(
            _resolve_field(
                field, is_pc=field.index == spec.pc_field, byte_offset=offset,
                options=options,
            )
        )
        offset += field.bytes
    return CompressorModel(spec=spec, options=options, fields=tuple(fields))
