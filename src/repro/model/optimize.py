"""Optimization and enhancement switches (paper Sections 5.2 and 5.3).

Each flag corresponds to a row of Table 2 or an algorithmic enhancement
over VPC3.  All flags default to on — the paper's "full optimizations"
configuration.  The table below maps flags to the paper:

=================== =====================================================
``smart_update``    update a table line only when the value differs from
                    the line's first entry (off = VPC3's always-update)
``type_minimization`` smallest sufficient element types for tables and
                    output streams (off = native int/long long widths)
``shared_tables``   one last-value table and one first-level hash chain
                    per field, shared across predictors (off = every
                    predictor owns private copies)
``fast_hash``       incremental select-fold-shift-xor hashing (off =
                    recompute every hash from scratch; same hash values)
``adaptive_shift``  small-field hash enhancement: widen the per-step
                    shift when the field is narrower than the index space
                    (off = VPC3's fixed shift of 1)
=================== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.predictors.tables import UpdatePolicy


@dataclass(frozen=True)
class OptimizationOptions:
    """Which of TCgen's optimizations are active."""

    smart_update: bool = True
    type_minimization: bool = True
    shared_tables: bool = True
    fast_hash: bool = True
    adaptive_shift: bool = True

    @property
    def update_policy(self) -> UpdatePolicy:
        return UpdatePolicy.SMART if self.smart_update else UpdatePolicy.ALWAYS

    @classmethod
    def full(cls) -> "OptimizationOptions":
        """All optimizations on (the paper's default configuration)."""
        return cls()

    @classmethod
    def none(cls) -> "OptimizationOptions":
        """Table 2's "all of the above" row: the four listed optimizations
        disabled together.  ``adaptive_shift`` is a VPC3 enhancement rather
        than a Table 2 row, so it stays on."""
        return cls(
            smart_update=False,
            type_minimization=False,
            shared_tables=False,
            fast_hash=False,
        )

    @classmethod
    def vpc3(cls) -> "OptimizationOptions":
        """The configuration emulating the original VPC3 algorithm.

        VPC3 always updates its predictor tables and uses the fixed-shift
        hash; it does use fast incremental hashing and sensible types.
        """
        return cls(smart_update=False, adaptive_shift=False)

    def without(self, name: str) -> "OptimizationOptions":
        """A copy with one named optimization turned off (Table 2 rows)."""
        if not hasattr(self, name):
            raise ValueError(f"unknown optimization {name!r}")
        return replace(self, **{name: False})


#: The ablation rows of Table 2, in paper order.
TABLE2_ROWS: tuple[tuple[str, OptimizationOptions], ...] = (
    ("no smart update", OptimizationOptions().without("smart_update")),
    ("no type minimization", OptimizationOptions().without("type_minimization")),
    ("no shared tables", OptimizationOptions().without("shared_tables")),
    ("no fast hash function", OptimizationOptions().without("fast_hash")),
    ("all of the above", OptimizationOptions.none()),
    ("full optimizations", OptimizationOptions.full()),
)
