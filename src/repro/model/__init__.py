"""Resolved compressor models.

A :class:`~repro.model.layout.CompressorModel` is the bridge between a
parsed specification and executable code: predictors renamed to dense
identification codes, tables shared and sized, element types minimized, and
the four application-specific optimizations from the paper's Section 5
resolved into concrete layout decisions.  Both the interpreted engine and
the code generators consume this model, which is what keeps them
byte-for-byte interchangeable.
"""

from repro.model.layout import CompressorModel, FieldLayout, ResolvedPredictor, build_model
from repro.model.optimize import OptimizationOptions

__all__ = [
    "CompressorModel",
    "FieldLayout",
    "ResolvedPredictor",
    "OptimizationOptions",
    "build_model",
]
